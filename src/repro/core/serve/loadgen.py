"""Open/closed-loop load generation for the serving front end.

Drives a :class:`~repro.core.serve.frontend.ServeFrontend` core on the
discrete-event :class:`~repro.sim.Simulator`, so an hour of heavy load
runs in milliseconds and — because the core, the arrival process, and
the replica pool are all seeded and clock-driven — two runs with the
same seed produce **bit-identical traces**. That determinism is the
load harness's acceptance bar (``BENCH_serve.json``'s ``deterministic``
flag) and what makes chaos runs (replica death mid-load) assertable.

Two load shapes, per the serving literature:

* **open loop** — arrivals follow the paper's
  :class:`~repro.core.serve.arrival.SineArrival` process regardless of
  completions; this is the "millions of independent users" model and
  the one that exposes overload (the generator does not slow down when
  the system does, so admission control must shed).
* **closed loop** — ``clients`` simulated users each wait for their
  response, think, then submit again; throughput self-limits at
  ``clients / (latency + think_time)``, which probes capacity without
  overload.

Replicas are modelled by :class:`ReplicaPool`: each batch occupies the
least-loaded live replica for ``c(b)`` seconds (the same affine latency
model the batcher plans with). A :class:`~repro.core.serve.frontend.
ScalingAdvisor` can be wired in to grow/shrink the pool from the live
telemetry gauges mid-run.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.serve.arrival import SineArrival
from repro.core.serve.frontend import (
    DispatchPlan,
    FrontendRequest,
    ScalingAdvisor,
    ServeFrontend,
)
from repro.exceptions import ConfigurationError, RequestShedError
from repro.sim import Signal, Simulator
from repro.tenancy import DEFAULT_TENANT

__all__ = [
    "LoadGenConfig",
    "TraceRecord",
    "LoadTrace",
    "ReplicaPool",
    "run_load",
    "run_multi_load",
]


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load run (see EXPERIMENTS.md for recipes)."""

    #: "open" (sine arrivals, overload-capable) or "closed" (think-time).
    mode: str = "open"
    #: open loop: the sine target rate r_target (requests/second).
    target_rate: float = 200.0
    #: open loop: sine period T in seconds.
    period: float = 60.0
    #: distinct client identities (round-robin in open loop; one
    #: simulated user each in closed loop).
    clients: int = 8
    #: closed loop: seconds a client waits between response and next
    #: request.
    think_time: float = 0.05
    #: seconds of load generation (completions drain afterwards).
    duration: float = 60.0
    #: open loop: arrival-process step in seconds.
    span: float = 0.05
    #: seeds the arrival noise; same seed => bit-identical trace.
    seed: int = 0
    #: tenant identity stamped on every offer and trace record; lets
    #: :func:`run_multi_load` drive several tenants' loads against one
    #: front end and pull per-tenant tails out of the shared trace.
    tenant: str = DEFAULT_TENANT

    def __post_init__(self):
        if self.mode not in ("open", "closed"):
            raise ConfigurationError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        if self.clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {self.clients}")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class TraceRecord:
    """One request's terminal event in the load trace."""

    #: front-end sequence number (0 for requests shed at admission,
    #: which never received one).
    seq: int
    client: str
    #: simulated time of the terminal event.
    time: float
    #: "served" or the shed reason.
    outcome: str
    #: arrival-to-completion seconds (NaN unless served).
    latency: float
    #: tenant the request was offered under.
    tenant: str = DEFAULT_TENANT


@dataclass
class LoadTrace:
    """Every request's fate, in deterministic simulated-event order."""

    tau: float
    duration: float
    mode: str
    records: list[TraceRecord] = field(default_factory=list)

    def record(self, record: TraceRecord) -> None:
        """Append one terminal event."""
        self.records.append(record)

    def fingerprint(self) -> str:
        """SHA-256 over the full trace — the bit-identity check."""
        digest = hashlib.sha256()
        for r in self.records:
            digest.update(
                f"{r.seq}|{r.client}|{r.time!r}|{r.outcome}|{r.latency!r}"
                f"|{r.tenant}\n".encode()
            )
        return digest.hexdigest()

    def summary(self, tenant: str | None = None) -> dict:
        """Aggregates for benches and the CLI: QPS, tails, shed rate.

        Pass ``tenant=`` to restrict the aggregates to one tenant's
        records — the isolation scenario's per-tenant tail check.
        """
        records = (
            self.records
            if tenant is None
            else [r for r in self.records if r.tenant == tenant]
        )
        served = [r for r in records if r.outcome == "served"]
        shed_by_reason: dict[str, int] = {}
        for r in records:
            if r.outcome != "served":
                shed_by_reason[r.outcome] = shed_by_reason.get(r.outcome, 0) + 1
        latencies = np.array([r.latency for r in served], dtype=np.float64)
        offered = len(records)
        quantile = (
            (lambda q: float(np.percentile(latencies, q)))
            if latencies.size
            else (lambda q: 0.0)
        )
        return {
            "mode": self.mode,
            "tau": self.tau,
            "duration": self.duration,
            "offered": offered,
            "served": len(served),
            "shed": offered - len(served),
            "shed_by_reason": shed_by_reason,
            "offered_qps": offered / self.duration,
            "sustained_qps": len(served) / self.duration,
            "p50_s": quantile(50),
            "p95_s": quantile(95),
            "p99_s": quantile(99),
            "slo_miss_rate": (
                float(np.mean(latencies > self.tau)) if latencies.size else 0.0
            ),
            "shed_rate": (offered - len(served)) / offered if offered else 0.0,
        }


class ReplicaPool:
    """A fleet of identical serving replicas with ``c(b)`` service time.

    Batches occupy the least-loaded *live* replica; killed replicas
    stop taking work (their in-flight batch still completes — the
    failure mode where the process dies mid-batch is modelled by a
    ``frontend.dispatch`` chaos rule instead). Doubles as the front
    end's capacity hook: ``capacity(now)`` reports live replicas and
    the head-of-line delay admission control divides work across.
    """

    def __init__(self, latency: Callable[[int], float], replicas: int = 1):
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.latency = latency
        self.busy_until = [0.0] * replicas
        self.alive = [True] * replicas

    @property
    def size(self) -> int:
        """Total replicas, live or not."""
        return len(self.busy_until)

    def live(self) -> int:
        """Replicas currently accepting work."""
        return sum(self.alive)

    def capacity(self, now: float) -> tuple[int, float]:
        """The front-end capacity hook: ``(live, head_delay_seconds)``."""
        delays = [
            max(b - now, 0.0) for b, a in zip(self.busy_until, self.alive) if a
        ]
        if not delays:
            return 0, 0.0
        return len(delays), min(delays)

    def assign(self, now: float, batch_size: int, extra_latency: float = 0.0) -> float:
        """Queue a batch on the least-loaded live replica.

        Returns the completion time; raises if no replica is live
        (callers check :meth:`live` and shed instead).
        """
        candidates = [i for i, a in enumerate(self.alive) if a]
        if not candidates:
            raise ConfigurationError("no live replica to assign the batch to")
        index = min(candidates, key=lambda i: (max(self.busy_until[i], now), i))
        start = max(self.busy_until[index], now)
        self.busy_until[index] = start + self.latency(batch_size) + extra_latency
        return self.busy_until[index]

    def kill(self, index: int) -> None:
        """Take a replica out of rotation (chaos: replica death)."""
        self.alive[index] = False

    def revive(self, index: int, now: float) -> None:
        """Return a replica to rotation with an empty work queue."""
        self.alive[index] = True
        self.busy_until[index] = now

    def scale_to(self, n: int, now: float) -> None:
        """Grow (fresh live replicas) or shrink (drop from the tail)."""
        if n < 1:
            raise ConfigurationError(f"cannot scale below 1 replica, got {n}")
        while len(self.busy_until) < n:
            self.busy_until.append(now)
            self.alive.append(True)
        while len(self.busy_until) > n:
            self.busy_until.pop()
            self.alive.pop()


def _spawn_load(
    driver: "_Driver", sim: Simulator, load: LoadGenConfig, stagger: float = 0.0
) -> None:
    """Spawn one load shape's arrival coroutine(s) into the simulator.

    ``stagger`` offsets every coroutine of this load by a sub-span
    epsilon so that concurrent loads (``run_multi_load``) keep a stable
    deterministic order for same-instant submissions.
    """
    if load.mode == "open":
        arrival = SineArrival(
            load.target_rate, load.period, rng=np.random.default_rng(load.seed)
        )
        sim.spawn(driver.open_loop(arrival, load), delay=stagger)
    else:
        # Stagger client starts so same-instant submissions keep a
        # stable deterministic order.
        for index in range(load.clients):
            prefix = _Driver._client_prefix(load)
            sim.spawn(
                driver.closed_client(f"{prefix}-{index}", load),
                delay=stagger + index * 1e-6,
            )


class _Driver:
    """Glues frontend core, replica pool and simulator together."""

    def __init__(
        self,
        frontend: ServeFrontend,
        pool: ReplicaPool,
        sim: Simulator,
        trace: LoadTrace,
    ):
        self.frontend = frontend
        self.pool = pool
        self.sim = sim
        self.trace = trace
        self._wake_at: float | None = None
        frontend.capacity = pool.capacity

    # -- admission ------------------------------------------------------

    def offer(
        self, client: str, tenant: str = DEFAULT_TENANT
    ) -> tuple[FrontendRequest | None, RequestShedError | None]:
        now = self.sim.now
        try:
            request = self.frontend.offer(client, None, now, tenant=tenant)
        except RequestShedError as exc:
            self.trace.record(
                TraceRecord(0, client, now, exc.reason, float("nan"), tenant)
            )
            return None, exc
        request.on_shed = self._on_shed
        self.pump()
        return request, None

    def _on_shed(self, request: FrontendRequest, error: RequestShedError) -> None:
        self.trace.record(
            TraceRecord(
                request.seq, request.client_id, self.sim.now,
                request.shed_reason or "shed", float("nan"), request.tenant,
            )
        )
        if isinstance(request.future, Signal):
            request.future.fire(error)

    # -- dispatch / completion -----------------------------------------

    def pump(self) -> None:
        now = self.sim.now
        for plan in self.frontend.poll(now):
            if self.pool.live() == 0:
                self.frontend.shed_requests(plan.requests, now, "dispatch_failed")
                continue
            completion = self.pool.assign(now, plan.batch_size, plan.extra_latency)
            self.sim.schedule(completion - now, self._complete, plan)
        self._arm_wake()

    def _arm_wake(self) -> None:
        wake = self.frontend.next_wake(self.sim.now)
        if wake is None:
            return
        if self._wake_at is not None and self._wake_at <= wake + 1e-9:
            return
        self._wake_at = wake
        self.sim.schedule(max(wake - self.sim.now, 0.0), self._on_wake, wake)

    def _on_wake(self, token: float) -> None:
        if self._wake_at == token:
            self._wake_at = None
        self.pump()

    def _complete(self, plan: DispatchPlan) -> None:
        now = self.sim.now
        self.frontend.complete(plan, now)
        for request in plan.requests:
            self.trace.record(
                TraceRecord(
                    request.seq, request.client_id, now, "served",
                    now - request.arrival, request.tenant,
                )
            )
            if isinstance(request.future, Signal):
                request.future.fire(None)
        self.pump()

    # -- load shapes ----------------------------------------------------

    @staticmethod
    def _client_prefix(load: LoadGenConfig) -> str:
        # Default-tenant loads keep the historical "client-N" names so
        # single-tenant traces (and their fingerprints) are unchanged;
        # multi-tenant loads get distinct per-tenant client identities.
        if load.tenant == DEFAULT_TENANT:
            return "client"
        return f"{load.tenant}-client"

    def open_loop(self, arrival: SineArrival, load: LoadGenConfig):
        prefix = self._client_prefix(load)
        sent = 0
        while self.sim.now < load.duration:
            for _ in range(arrival.count(self.sim.now, load.span)):
                self.offer(f"{prefix}-{sent % load.clients}", load.tenant)
                sent += 1
            yield load.span

    def closed_client(self, name: str, load: LoadGenConfig):
        while self.sim.now < load.duration:
            request, error = self.offer(name, load.tenant)
            if request is None:
                yield max(error.retry_after, load.think_time)
                continue
            signal = Signal(name)
            request.future = signal
            yield signal
            yield load.think_time

    def autoscale(
        self,
        advisor: ScalingAdvisor,
        bounds: tuple[int, int],
        interval: float,
        duration: float,
    ):
        low, high = bounds
        while self.sim.now < duration:
            hint = advisor.evaluate(self.sim.now)
            if hint > 0 and self.pool.size < high:
                self.pool.scale_to(self.pool.size + 1, self.sim.now)
            elif hint < 0 and self.pool.size > low:
                self.pool.scale_to(self.pool.size - 1, self.sim.now)
            yield interval


def run_load(
    frontend: ServeFrontend,
    pool: ReplicaPool,
    load: LoadGenConfig,
    sim: Simulator | None = None,
    autoscaler: ScalingAdvisor | None = None,
    scale_bounds: tuple[int, int] = (1, 8),
    autoscale_interval: float = 1.0,
    events: Sequence[tuple[float, Callable[[], None]]] = (),
) -> LoadTrace:
    """Run one load shape against a front end; returns the full trace.

    ``events`` is a deterministic chaos schedule: ``(time, thunk)``
    pairs executed at exact simulated instants (e.g.
    ``(30.0, lambda: pool.kill(1))`` for replica death mid-load).
    After ``load.duration`` the arrival side stops and in-flight work
    drains for ``10 * tau``; anything still queued then is shed as
    ``shutdown`` so every offered request has exactly one terminal
    trace record.
    """
    sim = sim if sim is not None else Simulator()
    trace = LoadTrace(tau=frontend.config.tau, duration=load.duration, mode=load.mode)
    driver = _Driver(frontend, pool, sim, trace)
    _spawn_load(driver, sim, load)
    if autoscaler is not None:
        sim.spawn(
            driver.autoscale(
                autoscaler, scale_bounds, autoscale_interval, load.duration
            )
        )
    for when, thunk in events:
        sim.schedule(when, thunk)
    sim.run(until=load.duration + 10.0 * frontend.config.tau)
    # Deterministic number of drain pumps: serve the stragglers the
    # leftover rule has already released, then shed whatever remains.
    driver.pump()
    sim.run(until=sim.now + 10.0 * frontend.config.tau)
    leftovers = frontend.pending.pop(len(frontend.pending))
    if leftovers:
        frontend.shed_requests(leftovers, sim.now, "shutdown")
    return trace


def run_multi_load(
    frontend: ServeFrontend,
    pool: ReplicaPool,
    loads: Sequence[LoadGenConfig],
    sim: Simulator | None = None,
    events: Sequence[tuple[float, Callable[[], None]]] = (),
) -> LoadTrace:
    """Run several loads (typically one per tenant) against one front end.

    All loads share the simulator, the front end and the replica pool,
    so they contend for the same queue and capacity — the setting the
    tenant-isolation scenario measures. Returns one combined trace;
    use ``trace.summary(tenant=...)`` for per-tenant aggregates. Load
    coroutines are staggered by a sub-span epsilon in list order so
    same-instant submissions stay deterministically ordered.
    """
    if not loads:
        raise ConfigurationError("run_multi_load needs at least one load")
    sim = sim if sim is not None else Simulator()
    duration = max(load.duration for load in loads)
    trace = LoadTrace(tau=frontend.config.tau, duration=duration, mode="multi")
    driver = _Driver(frontend, pool, sim, trace)
    for index, load in enumerate(loads):
        _spawn_load(driver, sim, load, stagger=index * 1e-7)
    for when, thunk in events:
        sim.schedule(when, thunk)
    sim.run(until=duration + 10.0 * frontend.config.tau)
    driver.pump()
    sim.run(until=sim.now + 10.0 * frontend.config.tau)
    leftovers = frontend.pending.pop(len(frontend.pending))
    if leftovers:
        frontend.shed_requests(leftovers, sim.now, "shutdown")
    return trace


def capacity_qps(latency: Callable[[int], float], batch_size: int, replicas: int = 1) -> float:
    """Peak sustainable requests/second: ``replicas * b / c(b)``.

    The open-loop benches express their concurrency levels as multiples
    of this number, so "1.5x capacity" means the same thing on any
    latency model.
    """
    if math.isclose(latency(batch_size), 0.0):
        raise ConfigurationError("latency model returned 0 — cannot derive capacity")
    return replicas * batch_size / latency(batch_size)


__all__.append("capacity_qps")

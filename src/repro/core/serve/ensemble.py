"""Ensemble accuracy lookup for the serving reward.

The reward (Equation 7) needs the surrogate accuracy ``a(M[v])`` of any
model subset. The paper evaluates every combination on the ImageNet
validation set offline (Figure 6); here the
:class:`~repro.zoo.correlated.EnsembleAccuracyModel` panel plays that
role and all ``2^|M| - 1`` values are precomputed.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.zoo.correlated import EnsembleAccuracyModel

__all__ = ["EnsembleScorer"]


class EnsembleScorer:
    """Precomputed subset -> accuracy table over a fixed model list."""

    def __init__(self, model_names: Sequence[str], panel: EnsembleAccuracyModel | None = None):
        self.model_names = tuple(model_names)
        if panel is None:
            panel = EnsembleAccuracyModel(self.model_names)
        elif panel.model_names != self.model_names:
            raise ConfigurationError(
                f"panel models {panel.model_names} != scorer models {self.model_names}"
            )
        self.panel = panel
        self._table: dict[tuple[int, ...], float] = {}
        k = len(self.model_names)
        for mask in range(1, 2**k):
            subset = tuple(i for i in range(k) if mask >> i & 1)
            self._table[subset] = panel.ensemble_accuracy(subset)

    def accuracy(self, subset: Sequence[int]) -> float:
        """``a(M[v])`` for a subset of model indices."""
        key = tuple(sorted(int(i) for i in subset))
        if key not in self._table:
            raise ConfigurationError(f"unknown subset {key} over {len(self.model_names)} models")
        return self._table[key]

    @property
    def best_single(self) -> float:
        return max(self._table[(i,)] for i in range(len(self.model_names)))

    @property
    def full_ensemble(self) -> float:
        return self._table[tuple(range(len(self.model_names)))]

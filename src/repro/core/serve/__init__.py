"""The inference service (Section 5).

Greedy SLO-aware batching (Algorithm 3), the sine arrival process of
the evaluation, the actor-critic controller that jointly selects the
batch size and the ensemble subset, the event-driven serving
environment the Figure 10/13-16 experiments run in, and the
high-concurrency front end (admission control, rate limits,
backpressure — see docs/SERVING.md) with its open/closed-loop load
harness.
"""

from repro.core.serve.actions import Action, ActionSpace
from repro.core.serve.actor_critic import ActorCritic
from repro.core.serve.arrival import SineArrival, solve_sine_coefficients
from repro.core.serve.batching import DEFAULT_BATCH_SIZES, BatchDecision, GreedyBatcher
from repro.core.serve.controllers import (
    Controller,
    Dispatch,
    GreedyAsyncController,
    GreedySingleController,
    GreedySyncController,
    RLController,
    Wait,
)
from repro.core.serve.ensemble import EnsembleScorer
from repro.core.serve.env import ServingEnv
from repro.core.serve.metrics import DispatchRecord, ServingMetrics, TimelineRow
from repro.core.serve.pred_cache import PredictionCache
from repro.core.serve.profiler import fit_affine_latency, profile_network
from repro.core.serve.request import RequestQueue
from repro.core.serve.reward import batch_reward, count_overdue, mean_exceeding_time
from repro.core.serve.state import StateBuilder

__all__ = [
    "RequestQueue",
    "SineArrival",
    "solve_sine_coefficients",
    "GreedyBatcher",
    "BatchDecision",
    "DEFAULT_BATCH_SIZES",
    "ActionSpace",
    "Action",
    "ActorCritic",
    "StateBuilder",
    "EnsembleScorer",
    "Controller",
    "Dispatch",
    "Wait",
    "GreedySingleController",
    "GreedySyncController",
    "GreedyAsyncController",
    "RLController",
    "ServingEnv",
    "ServingMetrics",
    "PredictionCache",
    "profile_network",
    "fit_affine_latency",
    "DispatchRecord",
    "TimelineRow",
    "batch_reward",
    "count_overdue",
    "mean_exceeding_time",
]

from repro.core.serve.controllers import AIMDController  # noqa: E402

__all__ += ["AIMDController"]

from repro.core.serve.frontend import (  # noqa: E402
    AsyncServeFrontend,
    FrontendConfig,
    FrontendRequest,
    ScalingAdvisor,
    ServeFrontend,
    TokenBucket,
)
from repro.core.serve.loadgen import (  # noqa: E402
    LoadGenConfig,
    LoadTrace,
    ReplicaPool,
    capacity_qps,
    run_load,
    run_multi_load,
)

__all__ += [
    "ServeFrontend",
    "AsyncServeFrontend",
    "FrontendConfig",
    "FrontendRequest",
    "TokenBucket",
    "ScalingAdvisor",
    "LoadGenConfig",
    "LoadTrace",
    "ReplicaPool",
    "run_load",
    "run_multi_load",
    "capacity_qps",
]

"""Serving controllers: the greedy baselines and the RL scheduler.

A controller is consulted by the :class:`~repro.core.serve.env.ServingEnv`
whenever the queue is non-empty and at least one model is idle, and
answers with either a :class:`Dispatch` (which models run which batch
now) or a :class:`Wait` (optionally: until a specific time, used by the
greedy batcher's SLO deadline).

* :class:`GreedySingleController` — Algorithm 3 with one model
  (Section 7.2.1's greedy baseline);
* :class:`GreedySyncController` — all models run every batch
  synchronously (the first multi-model baseline, Figure 14);
* :class:`GreedyAsyncController` — one model per batch, no ensemble
  (the second baseline, Figure 15);
* :class:`RLController` — the actor-critic scheduler jointly choosing
  batch size and model subset (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import telemetry
from repro.core.serve.actions import ActionSpace
from repro.core.serve.actor_critic import ActorCritic
from repro.exceptions import ConfigurationError
from repro.core.serve.batching import GreedyBatcher
from repro.core.serve.state import StateBuilder
from repro.zoo.profiles import ModelProfile

__all__ = [
    "Dispatch",
    "Wait",
    "Controller",
    "GreedySingleController",
    "GreedySyncController",
    "GreedyAsyncController",
    "RLController",
]


@dataclass(frozen=True)
class Dispatch:
    """Run the ``take`` oldest requests on ``subset`` at ``batch_size``."""

    subset: tuple[int, ...]
    batch_size: int
    take: int


@dataclass(frozen=True)
class Wait:
    """Do nothing now; optionally wake at ``until``."""

    until: float | None = None


class Controller:
    """Base interface."""

    def decide(self, env) -> Dispatch | Wait:
        raise NotImplementedError

    def notify_reward(self, reward: float) -> None:
        """Called once per dispatch with the realised Equation-7 reward."""


class GreedySingleController(Controller):
    """Algorithm 3 over a single deployed model."""

    def __init__(self, profile: ModelProfile, batch_sizes: Sequence[int], tau: float,
                 backoff: float | None = None):
        self.batcher = GreedyBatcher(
            batch_sizes=batch_sizes, latency=profile.inference_time, tau=tau, backoff=backoff
        )

    def decide(self, env) -> Dispatch | Wait:
        if not env.model_idle(0):
            return Wait()
        decision = self.batcher.decide(env.queue, env.now)
        if decision.dispatch:
            return Dispatch(subset=(0,), batch_size=decision.batch_size, take=decision.take)
        return Wait(until=self.batcher.next_deadline(env.queue, env.now))


class GreedySyncController(Controller):
    """All models ensemble every batch; batch sized by the slowest model."""

    def __init__(self, profiles: Sequence[ModelProfile], batch_sizes: Sequence[int], tau: float,
                 backoff: float | None = None):
        self.num_models = len(profiles)

        def slowest(batch: int) -> float:
            return max(p.inference_time(batch) for p in profiles)

        self.batcher = GreedyBatcher(
            batch_sizes=batch_sizes, latency=slowest, tau=tau, backoff=backoff
        )

    def decide(self, env) -> Dispatch | Wait:
        if not all(env.model_idle(m) for m in range(self.num_models)):
            return Wait()
        decision = self.batcher.decide(env.queue, env.now)
        if decision.dispatch:
            return Dispatch(
                subset=tuple(range(self.num_models)),
                batch_size=decision.batch_size,
                take=decision.take,
            )
        return Wait(until=self.batcher.next_deadline(env.queue, env.now))


class GreedyAsyncController(Controller):
    """One model per batch (no ensemble), models drained round-robin."""

    def __init__(self, profiles: Sequence[ModelProfile], batch_sizes: Sequence[int], tau: float,
                 backoff: float | None = None):
        self.profiles = list(profiles)
        self.batchers = [
            GreedyBatcher(batch_sizes=batch_sizes, latency=p.inference_time, tau=tau,
                          backoff=backoff)
            for p in self.profiles
        ]
        self._next = 0

    def decide(self, env) -> Dispatch | Wait:
        idle = [m for m in range(len(self.profiles)) if env.model_idle(m)]
        if not idle:
            return Wait()
        # Round-robin over idle models so the fleet shares the load.
        idle.sort(key=lambda m: (m - self._next) % len(self.profiles))
        model = idle[0]
        batcher = self.batchers[model]
        decision = batcher.decide(env.queue, env.now)
        if decision.dispatch:
            self._next = (model + 1) % len(self.profiles)
            return Dispatch(subset=(model,), batch_size=decision.batch_size, take=decision.take)
        return Wait(until=batcher.next_deadline(env.queue, env.now))


class AIMDController(Controller):
    """Clipper-style additive-increase / multiplicative-decrease batching.

    Section 2.3 credits Clipper with tuning the batch size via AIMD:
    grow the batch additively while the SLO holds, cut it multiplicatively
    on a miss. This controller serves a single model with a continuously
    adapted batch size (not restricted to the candidate list), providing
    a third baseline between the static greedy batcher and RL.
    """

    def __init__(
        self,
        profile: ModelProfile,
        tau: float,
        max_batch: int = 64,
        increase: int = 2,
        decrease: float = 0.5,
        backoff: float | None = None,
    ):
        self.profile = profile
        self.tau = float(tau)
        self.max_batch = int(max_batch)
        self.increase = int(increase)
        self.decrease = float(decrease)
        self.backoff = float(backoff) if backoff is not None else 0.1 * self.tau
        self.batch_size = max(1, max_batch // 4)
        self._last_dispatch: tuple[int, float] | None = None  # (take, started)

    def decide(self, env) -> Dispatch | Wait:
        if not env.model_idle(0) or not env.queue:
            return Wait()
        latency = self.profile.inference_time(self.batch_size)
        queue_full = len(env.queue) >= self.batch_size
        deadline = latency + env.queue.oldest_wait(env.now) + self.backoff >= self.tau
        if not (queue_full or deadline):
            wake = env.queue.oldest_arrival() + self.tau - latency - self.backoff
            return Wait(until=max(wake, env.now))
        take = min(self.batch_size, len(env.queue))
        self._last_dispatch = (take, env.now + env.queue.oldest_wait(env.now))
        telemetry.get_registry().gauge(
            "repro_serve_aimd_batch_size", "Current AIMD-adapted batch size."
        ).set(self.batch_size)
        return Dispatch(subset=(0,), batch_size=self.batch_size, take=take)

    def notify_reward(self, reward: float) -> None:
        """Adapt the batch size from the realised Equation-7 reward.

        A batch with zero overdue requests earns exactly
        ``accuracy * take / max(B)`` under the default batch-scaled
        shaping; anything lower means some request overran the SLO —
        Clipper's miss signal.
        """
        take = self._last_dispatch[0] if self._last_dispatch else 0
        expected = self.profile.top1_accuracy * take / self.max_batch
        if reward >= expected - 1e-9:
            self.batch_size = min(self.batch_size + self.increase, self.max_batch)
        else:
            self.batch_size = max(int(self.batch_size * self.decrease), 1)


class RLController(Controller):
    """Actor-critic over the joint (subset, batch size) action space.

    Decisions are immediate: whenever requests are queued and at least
    one model is idle, the policy picks ``(v, b)`` and the ``min(b,
    len(q))`` oldest requests are dispatched right away. A selected
    model that is still busy queues the batch behind its in-flight work
    — the state's remaining-busy-time features let the policy reason
    about (and learn to avoid) that. The realised Equation-7 reward
    arrives synchronously after each dispatch.
    """

    def __init__(
        self,
        profiles: Sequence[ModelProfile],
        batch_sizes: Sequence[int],
        tau: float,
        queue_window: int = 32,
        hidden: tuple[int, ...] = (64, 64),
        lr: float = 1e-3,
        gamma: float = 0.9,
        entropy_coef: float = 0.02,
        horizon: int = 64,
        seed: int = 0,
    ):
        include_model_status = len(profiles) > 1
        self.profiles = list(profiles)
        self.tau = float(tau)
        self.state_builder = StateBuilder(
            profiles, batch_sizes, tau,
            queue_window=queue_window,
            include_model_status=include_model_status,
        )
        self.action_space = ActionSpace(len(profiles), batch_sizes)
        self.learner = ActorCritic(
            state_dim=self.state_builder.dim,
            num_actions=len(self.action_space),
            hidden=hidden,
            lr=lr,
            gamma=gamma,
            entropy_coef=entropy_coef,
            horizon=horizon,
            seed=seed,
        )
        self._last_token: int | None = None

    def decide(self, env) -> Dispatch | Wait:
        idle = [env.model_idle(m) for m in range(self.action_space.num_models)]
        if not any(idle) or not env.queue:
            return Wait()
        state = self.state_builder.build(env.queue, env.now, env.busy_until)
        action_index, token = self.learner.act_keyed(state, mask=None)
        action = self.action_space.decode(action_index)
        self._last_token = token
        take = min(action.batch_size, len(env.queue))
        telemetry.get_registry().counter(
            "repro_serve_rl_actions_total",
            "Actor-critic dispatch actions, by ensemble size.",
        ).inc(models=str(len(action.subset)))
        return Dispatch(subset=action.subset, batch_size=action.batch_size, take=take)

    def notify_reward(self, reward: float) -> None:
        if self._last_token is None:
            raise ConfigurationError("reward with no dispatched action")
        self.learner.complete(self._last_token, reward)
        self._last_token = None

"""The sine-wave request arrival process (Section 7.2, Figure 12).

The arrival rate is ``r(t) = gamma * sin(2*pi*t/T) + b`` with slope and
intercept solved from the paper's two conditions (Equations 8 and 9):

* the rate exceeds the target throughput ``r_target`` (either the
  system's maximum ``r_u`` or minimum ``r_l``) for 20% of every cycle,
  centred on the peak;
* the peak rate is ``1.1 * r_target`` so the queue cannot blow up.

With the peak at ``t = T/4``, exceeding the target for ``0.2 T`` means
``r(T/4 +/- 0.1 T) = r_target``, i.e. ``gamma*cos(0.2*pi) + b =
r_target`` while ``gamma + b = 1.1 * r_target``. The realised request
count over a span ``delta`` is ``delta * r(t) * (1 + phi)`` with
``phi ~ N(0, 0.1)``, the noise the paper injects to stop the RL
controller memorising the sine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SineArrival", "solve_sine_coefficients"]


def solve_sine_coefficients(target_rate: float) -> tuple[float, float]:
    """Solve Equations 8 and 9 for the sine slope ``gamma`` and intercept ``b``."""
    check_positive("target_rate", target_rate)
    cos_band = math.cos(0.2 * math.pi)
    gamma = 0.1 * target_rate / (1.0 - cos_band)
    intercept = 1.1 * target_rate - gamma
    return gamma, intercept


class SineArrival:
    """Generates noisy sine-modulated request counts."""

    def __init__(
        self,
        target_rate: float,
        period: float,
        noise_std: float = 0.1,
        rng: np.random.Generator | None = None,
    ):
        check_positive("period", period)
        self.target_rate = float(target_rate)
        self.period = float(period)
        self.noise_std = float(noise_std)
        self.gamma, self.intercept = solve_sine_coefficients(target_rate)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._carry = 0.0  # fractional requests carried between spans

    def rate(self, t: float) -> float:
        """The deterministic arrival rate at time ``t`` (requests/s)."""
        return max(self.gamma * math.sin(2.0 * math.pi * t / self.period) + self.intercept, 0.0)

    def peak_rate(self) -> float:
        return self.gamma + self.intercept

    def trough_rate(self) -> float:
        return max(self.intercept - self.gamma, 0.0)

    def count(self, t: float, span: float) -> int:
        """Number of new requests over ``[t, t + span)``.

        ``span * r(t) * (1 + phi)``, accumulated so sub-request
        fractions are not lost at fine simulation steps.
        """
        noisy = span * self.rate(t) * (1.0 + self._rng.normal(0.0, self.noise_std))
        total = max(noisy, 0.0) + self._carry
        count = int(total)
        self._carry = total - count
        return count

"""The actor-critic learner (Section 5.2).

A softmax policy network pi_theta(a|s) and a value network V(s), both
MLPs on the :mod:`repro.tensor` engine. Rewards arrive immediately
after each action (a dispatched batch's latency is deterministic given
the latency model), transitions are buffered, and every ``horizon``
decisions the learner performs one advantage-actor-critic update:

* returns: n-step discounted rewards bootstrapped with V at the last
  observed state;
* policy gradient: ``(probs - onehot) * normalised_advantage`` plus an
  annealed entropy bonus (the exploration/exploitation balance the
  paper handles with alpha-greedy elsewhere);
* value loss: MSE to the returns.

Invalid actions (subsets containing busy models) are masked out of the
softmax at both sampling and update time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tensor import Adam, Network
from repro.tensor.losses import softmax
from repro.zoo.builders import build_mlp

__all__ = ["ActorCritic", "Transition"]


@dataclass
class Transition:
    state: np.ndarray
    action: int
    reward: float
    mask: np.ndarray


class ActorCritic:
    """Online advantage actor-critic over a discrete action space."""

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        hidden: tuple[int, ...] = (64, 64),
        lr: float = 1e-3,
        gamma: float = 0.9,
        entropy_coef: float = 0.02,
        entropy_decay: float = 0.9995,
        entropy_min: float = 0.001,
        horizon: int = 64,
        seed: int = 0,
    ):
        if not 0.0 <= gamma < 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1), got {gamma}")
        rng = np.random.default_rng(seed)
        self.policy: Network = build_mlp((state_dim,), num_actions, rng, hidden=hidden,
                                         name="policy")
        self.value: Network = build_mlp((state_dim,), 1, rng, hidden=hidden, name="value")
        self.policy_opt = Adam(lr=lr)
        self.value_opt = Adam(lr=lr)
        self.num_actions = int(num_actions)
        self.gamma = float(gamma)
        self.entropy_coef = float(entropy_coef)
        self.entropy_decay = float(entropy_decay)
        self.entropy_min = float(entropy_min)
        self.horizon = int(horizon)
        self._rng = rng
        self._buffer: list[Transition] = []
        self._open: dict[int, Transition] = {}
        self._token_counter = 0
        self._implicit_token: int | None = None
        self.decisions = 0
        self.updates = 0

    # ------------------------------------------------------------------
    # acting
    # ------------------------------------------------------------------

    def masked_probs(self, state: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
        """Action probabilities with invalid actions masked out."""
        logits = self.policy.forward(state[None, :])[0]
        if mask is not None:
            logits = np.where(mask, logits, -1e9)
        return softmax(logits[None, :])[0]

    def act_keyed(self, state: np.ndarray, mask: np.ndarray | None = None) -> tuple[int, int]:
        """Sample an action; returns ``(action, token)``.

        Several actions may be in flight at once (the serving controller
        keeps one pending dispatch per model subset); the token routes
        each action's reward back to its transition.
        """
        state = np.asarray(state, dtype=np.float64)
        if mask is None:
            mask = np.ones(self.num_actions, dtype=bool)
        if not mask.any():
            raise ConfigurationError("no valid action available")
        probs = self.masked_probs(state, mask)
        action = int(self._rng.choice(self.num_actions, p=probs))
        self._token_counter += 1
        token = self._token_counter
        self._open[token] = Transition(
            state=state, action=action, reward=0.0, mask=mask.copy()
        )
        self.decisions += 1
        return action, token

    def complete(self, token: int, reward: float) -> None:
        """Attach a reward to an in-flight action and buffer the transition."""
        transition = self._open.pop(token, None)
        if transition is None:
            raise ConfigurationError(f"no open transition for token {token}")
        transition.reward = float(reward)
        self._buffer.append(transition)
        if len(self._buffer) >= self.horizon:
            self.update()

    def act(self, state: np.ndarray, mask: np.ndarray | None = None) -> int:
        """Single-pending convenience wrapper around :meth:`act_keyed`.

        An un-rewarded previous action is finalised with zero reward.
        """
        if self._implicit_token is not None and self._implicit_token in self._open:
            self.complete(self._implicit_token, 0.0)
        action, token = self.act_keyed(state, mask)
        self._implicit_token = token
        return action

    def give_reward(self, reward: float) -> None:
        """Attach the (immediate) reward of the latest :meth:`act` action."""
        if self._implicit_token is None or self._implicit_token not in self._open:
            raise ConfigurationError("give_reward called with no pending action")
        self.complete(self._implicit_token, reward)
        self._implicit_token = None

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------

    def update(self) -> None:
        """One A2C update over the buffered transitions."""
        if not self._buffer:
            return
        batch = self._buffer
        self._buffer = []
        states = np.vstack([t.state for t in batch])
        actions = np.array([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])
        masks = np.vstack([t.mask for t in batch])

        # n-step discounted returns bootstrapped with V(last state).
        values = self.value.forward(states).ravel()
        bootstrap = values[-1]
        returns = np.empty_like(rewards)
        running = bootstrap
        for i in range(len(batch) - 1, -1, -1):
            running = rewards[i] + self.gamma * running
            returns[i] = running

        advantages = returns - values
        std = advantages.std()
        if std > 1e-8:
            advantages = (advantages - advantages.mean()) / std

        # --- policy update -------------------------------------------
        self.policy.zero_grads()
        logits = self.policy.forward(states, training=True)
        masked_logits = np.where(masks, logits, -1e9)
        probs = softmax(masked_logits)
        onehot = np.zeros_like(probs)
        onehot[np.arange(len(batch)), actions] = 1.0
        grad = (probs - onehot) * advantages[:, None]
        # entropy bonus (gradient ascent on H): dH/dz = -p (log p + H)
        log_probs = np.log(np.clip(probs, 1e-12, None))
        entropy = -(probs * log_probs).sum(axis=1, keepdims=True)
        grad -= self.entropy_coef * (-probs * (log_probs + entropy))
        grad = np.where(masks, grad, 0.0)
        self.policy.backward(grad / len(batch))
        self.policy_opt.step(self.policy.params, self.policy.grads)

        # --- value update ---------------------------------------------
        self.value.zero_grads()
        predictions = self.value.forward(states, training=True).ravel()
        value_grad = (2.0 * (predictions - returns) / len(batch))[:, None]
        self.value.backward(value_grad)
        self.value_opt.step(self.value.params, self.value.grads)

        self.entropy_coef = max(self.entropy_coef * self.entropy_decay, self.entropy_min)
        self.updates += 1

    # ------------------------------------------------------------------
    # persistence (master failure recovery checkpoints this state)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Policy + value parameters (checkpointed for recovery)."""
        state = {f"policy/{k}": v for k, v in self.policy.state_dict().items()}
        state.update({f"value/{k}": v for k, v in self.value.state_dict().items()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore policy + value parameters from a checkpoint."""
        self.policy.load_state_dict(
            {k[len("policy/"):]: v for k, v in state.items() if k.startswith("policy/")}
        )
        self.value.load_state_dict(
            {k[len("value/"):]: v for k, v in state.items() if k.startswith("value/")}
        )

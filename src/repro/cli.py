"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``profiles`` — print the Figure 3 model cards;
* ``ensemble`` — print the Figure 6 ensemble-accuracy table;
* ``tune`` — run a (surrogate) hyper-parameter study and report it
  (``--telemetry`` dumps the metrics snapshot afterwards);
* ``demo`` — the Figure 2 quickstart: train, deploy and query a small
  real model through the SDK;
* ``sql`` — the Section 8 case study in miniature;
* ``telemetry`` — exercise every subsystem briefly and print the
  unified metrics snapshot (JSON or Prometheus text exposition);
* ``chaos`` — run the seeded fault-injection scenario across tune,
  serve, the parameter server and the gateway, and report the recovery
  trace (``--verify`` re-runs it and asserts the trace is identical);
* ``serve`` — drive the serving path under load: with ``--frontend``,
  the admission-controlled front end + open/closed-loop load harness
  (docs/SERVING.md); without it, the classic greedy serving
  environment;
* ``store`` — exercise the chunked, content-addressable, replicated
  block store: write near-duplicate checkpoint versions and report the
  dedup/replication audit (``--kill`` adds a datanode kill + repair +
  rejoin reconciliation; ``--scenario`` runs the seeded mid-write/
  mid-read store-kill chaos scenario, ``--verify`` asserting the trace
  is bit-identical across two same-seed runs);
* ``tenants`` — run the seeded tenant-isolation scenario: a noisy
  tenant floods and crash-loops while a quiet tenant's jobs keep
  placing and its served p99 stays within 2x the SLO (``--verify``
  asserts the trace is bit-identical across two same-seed runs).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Rafiki (VLDB 2018) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("profiles", help="print the Figure 3 model cards")

    ensemble = sub.add_parser("ensemble", help="print the Figure 6 accuracy table")
    ensemble.add_argument("--examples", type=int, default=20_000,
                          help="Monte-Carlo panel size")

    tune = sub.add_parser("tune", help="run a hyper-parameter study (surrogate)")
    tune.add_argument("--trials", type=int, default=60)
    tune.add_argument("--workers", type=int, default=3)
    tune.add_argument("--advisor", choices=("random", "bayesian"), default="random")
    tune.add_argument("--collaborative", action="store_true",
                      help="use CoStudy (Algorithm 2) instead of Study")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--real", action="store_true",
                      help="train real NumPy networks instead of the surrogate")
    tune.add_argument("--pool", action="store_true",
                      help="with --real: run trials on a persistent worker pool "
                           "with shared-memory IPC (default backend when "
                           "--processes is given)")
    tune.add_argument("--pool-reuse", action="store_true",
                      help="run the study twice on one persistent pool and "
                           "report cold vs warm wall-clock (implies --pool)")
    tune.add_argument("--legacy-spawn", action="store_true",
                      help="use the old spawn-per-study executor instead of "
                           "the persistent pool")
    tune.add_argument("--processes", type=int, default=0, metavar="N",
                      help="with --real: run trials on N child processes "
                           "(multi-core; 0 = in-process)")
    tune.add_argument("--ps-shards", type=int, default=1, metavar="N",
                      help="shard the parameter server across N servers "
                           "(1 = the classic single server)")
    tune.add_argument("--ps-replicas", type=int, default=2, metavar="R",
                      help="copies of each parameter key when sharded")
    tune.add_argument("--telemetry", action="store_true",
                      help="print the telemetry snapshot after the study")

    demo = sub.add_parser("demo", help="train, deploy and query a real model")
    demo.add_argument("--classes", type=int, default=3)
    demo.add_argument("--trials", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)

    sql = sub.add_parser("sql", help="run the Section 8 SQL/UDF case study")
    sql.add_argument("--query", default=None,
                     help="SQL to run instead of the built-in case-study query")
    sql.add_argument("--executor", choices=("planned", "naive", "both"),
                     default="both",
                     help="which executor to run (default: both, comparing)")
    sql.add_argument("--explain", action="store_true",
                     help="print the optimized logical plan before running")
    sql.add_argument("--rows", type=int, default=30,
                     help="rows in the generated foodlog table")
    sql.add_argument("--seed", type=int, default=0)

    tele = sub.add_parser(
        "telemetry",
        help="exercise tune/serve/paramserver/cluster/gateway and dump the snapshot",
    )
    tele.add_argument("--format", choices=("json", "prom"), default="json",
                      help="snapshot format: JSON or Prometheus text exposition")
    tele.add_argument("--trace", action="store_true",
                      help="include recorded tracing spans (JSON format only)")
    tele.add_argument("--seed", type=int, default=0)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run the seeded chaos scenario and print the recovery trace",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument("--json", action="store_true",
                           help="print the full result (trace included) as JSON")
    chaos_cmd.add_argument("--verify", action="store_true",
                           help="run the scenario twice and require identical traces")

    tenants_cmd = sub.add_parser(
        "tenants",
        help="run the seeded tenant-isolation scenario and print the verdict",
    )
    tenants_cmd.add_argument("--seed", type=int, default=0)
    tenants_cmd.add_argument("--json", action="store_true",
                             help="print the full result (trace included) as JSON")
    tenants_cmd.add_argument("--verify", action="store_true",
                             help="run the scenario twice and require identical "
                                  "traces")

    serve_cmd = sub.add_parser(
        "serve", help="drive the serving path under generated load"
    )
    serve_cmd.add_argument("--frontend", action="store_true",
                           help="use the admission-controlled front end and the "
                                "open/closed-loop load harness (docs/SERVING.md)")
    serve_cmd.add_argument("--mode", choices=("open", "closed"), default="open",
                           help="load shape: sine arrivals vs think-time clients")
    serve_cmd.add_argument("--rate", type=float, default=None, metavar="QPS",
                           help="open loop: target arrival rate "
                                "(default 1.2x single-replica capacity)")
    serve_cmd.add_argument("--clients", type=int, default=16,
                           help="client identities (closed loop: one user each)")
    serve_cmd.add_argument("--think-time", type=float, default=0.02,
                           help="closed loop: seconds between response and next request")
    serve_cmd.add_argument("--duration", type=float, default=30.0,
                           help="seconds of simulated load")
    serve_cmd.add_argument("--replicas", type=int, default=2)
    serve_cmd.add_argument("--tau", type=float, default=0.56,
                           help="the SLO deadline in seconds")
    serve_cmd.add_argument("--rate-limit", type=float, default=None, metavar="QPS",
                           help="per-client token-bucket rate (default: off)")
    serve_cmd.add_argument("--max-queue", type=int, default=1024)
    serve_cmd.add_argument("--autoscale", action="store_true",
                           help="let the ScalingAdvisor grow/shrink the replica "
                                "pool off the live telemetry gauges")
    serve_cmd.add_argument("--model", default="inception_v3",
                           help="zoo profile supplying the c(b) latency model")
    serve_cmd.add_argument("--seed", type=int, default=0)
    serve_cmd.add_argument("--json", action="store_true",
                           help="print the summary as JSON")

    store_cmd = sub.add_parser(
        "store",
        help="exercise the chunked, replicated block store and audit it",
    )
    store_cmd.add_argument("--nodes", type=int, default=3,
                           help="datanodes in the store")
    store_cmd.add_argument("--replicas", type=int, default=2,
                           help="copies of each chunk")
    store_cmd.add_argument("--chunk-size", type=int, default=4096,
                           help="chunk size in bytes")
    store_cmd.add_argument("--versions", type=int, default=10,
                           help="near-duplicate checkpoint versions to write")
    store_cmd.add_argument("--size", type=int, default=64 * 1024,
                           help="checkpoint size in bytes")
    store_cmd.add_argument("--kill", action="store_true",
                           help="kill a datanode after writing, then repair "
                                "and reconcile its rejoin")
    store_cmd.add_argument("--scenario", action="store_true",
                           help="run the seeded store-kill chaos scenario "
                                "(mid-write + mid-read datanode kills) instead")
    store_cmd.add_argument("--verify", action="store_true",
                           help="with --scenario: run twice and require "
                                "identical recovery traces")
    store_cmd.add_argument("--seed", type=int, default=0)
    store_cmd.add_argument("--json", action="store_true",
                           help="print the full result as JSON")
    return parser


def _cmd_profiles(args) -> int:
    from repro.zoo import list_profiles

    print(f"{'model':<22} {'top-1':>6} {'iter(s)':>8} {'mem(MB)':>8}")
    for profile in sorted(list_profiles(), key=lambda p: p.iteration_time_b50):
        print(f"{profile.name:<22} {profile.top1_accuracy:>6.3f} "
              f"{profile.iteration_time_b50:>8.3f} {profile.memory_mb:>8.0f}")
    return 0


def _cmd_ensemble(args) -> int:
    from repro.zoo import EnsembleAccuracyModel

    panel = EnsembleAccuracyModel(
        ("resnet_v2_101", "inception_v3", "inception_v4", "inception_resnet_v2"),
        num_examples=args.examples,
    )
    print(f"{'k':<3} {'accuracy':>9}  models")
    for names, accuracy in sorted(panel.accuracy_table().items(),
                                  key=lambda kv: (len(kv[0]), -kv[1])):
        print(f"{len(names):<3} {accuracy:>9.4f}  {' + '.join(names)}")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.tune import (
        BayesianAdvisor,
        CoStudyMaster,
        HyperConf,
        RandomSearchAdvisor,
        RealTrainer,
        StudyMaster,
        SurrogateTrainer,
        make_workers,
        run_study,
        run_study_parallel,
        section71_space,
    )
    from repro.paramserver import ParameterServer, ShardedParameterServer

    if args.pool_reuse:
        args.pool = True
    if (args.processes or args.pool) and not args.real:
        print("--processes/--pool require --real (the surrogate is already "
              "instant)", file=sys.stderr)
        return 2
    if args.legacy_spawn and args.pool:
        print("--legacy-spawn conflicts with --pool/--pool-reuse",
              file=sys.stderr)
        return 2
    if args.pool and not args.processes:
        args.processes = max(1, os.cpu_count() or 1)
    if args.ps_shards < 1:
        print("--ps-shards must be >= 1", file=sys.stderr)
        return 2
    max_epochs = 6 if args.real else 50
    conf = HyperConf(max_trials=args.trials, max_epochs_per_trial=max_epochs,
                     delta=0.005)
    advisor_cls = {"random": RandomSearchAdvisor, "bayesian": BayesianAdvisor}[args.advisor]
    if args.real:
        from repro.data import make_image_classification
        from repro.zoo.builders import build_mlp

        dataset = make_image_classification(
            name="tune", num_classes=3, image_shape=(3, 8, 8),
            train_per_class=24, val_per_class=8, test_per_class=8,
            difficulty=0.3, seed=args.seed,
        )
        backend = RealTrainer(dataset, build_mlp, batch_size=16,
                              use_augmentation=False, seed=args.seed)
    else:
        backend = SurrogateTrainer(seed=args.seed)

    def build_study():
        if args.ps_shards > 1:
            param_server = ShardedParameterServer(
                shards=args.ps_shards, replicas=args.ps_replicas
            )
        else:
            param_server = ParameterServer()
        advisor = advisor_cls(section71_space(), rng=np.random.default_rng(args.seed))
        if args.collaborative:
            master = CoStudyMaster("cli", conf, advisor, param_server,
                                   rng=np.random.default_rng(args.seed + 7))
        else:
            master = StudyMaster("cli", conf, advisor, param_server)
        workers = make_workers(master, backend, param_server, conf, args.workers)
        return master, workers

    exec_backend = "legacy" if args.legacy_spawn else "pool"
    if args.pool_reuse:
        import itertools
        import time

        import repro.core.tune.trial as trial_module
        from repro.core.tune import TrialPool

        walls = []
        fingerprints = []
        with TrialPool(processes=args.processes) as pool:
            for label in ("cold", "warm"):
                # rewind trial ids so both studies are comparable
                trial_module._trial_ids = itertools.count(1)
                master, workers = build_study()
                started = time.perf_counter()
                report = run_study_parallel(master, workers, pool=pool)
                walls.append((label, time.perf_counter() - started))
                fingerprints.append(
                    [(e.index, e.performance, e.epochs, e.time)
                     for e in report.history]
                )
        for label, wall in walls:
            print(f"{label} study on reused pool: {wall:.3f}s wall-clock")
        identical = fingerprints[0] == fingerprints[1]
        print(f"reports bit-identical across pool reuse: {identical}")
    else:
        master, workers = build_study()
        if args.processes:
            report = run_study_parallel(master, workers,
                                        processes=args.processes,
                                        backend=exec_backend)
        else:
            report = run_study(master, workers)
    best = report.best
    kind = "CoStudy" if args.collaborative else "Study"
    print(f"{kind} with {args.advisor} search: {len(report.results)} trials, "
          f"{report.total_epochs} epochs, {report.wall_time / 3600:.1f} simulated hours")
    print(f"best accuracy {best.performance:.4f} with:")
    for name, value in sorted(best.trial.params.items()):
        print(f"  {name:<14} {value:.5g}")
    if args.telemetry:
        from repro import telemetry

        print()
        print(telemetry.to_json(telemetry.get_registry()))
    return 0


def _cmd_demo(args) -> int:
    import repro as rafiki
    from repro.api.sdk import connect
    from repro.data import make_image_classification

    connect()
    photos = make_image_classification(
        name="demo", num_classes=args.classes, image_shape=(3, 8, 8),
        train_per_class=24, val_per_class=8, test_per_class=8,
        difficulty=0.3, seed=args.seed,
    )
    data = rafiki.import_images(photos)
    job_id = rafiki.Train(
        name="demo", data=data, task="ImageClassification",
        hyper=rafiki.HyperConf(max_trials=args.trials, max_epochs_per_trial=6),
    ).run()
    models = rafiki.get_models(job_id)
    infer_id = rafiki.Inference(models).run()
    correct = 0
    for i in range(len(photos.test_y)):
        ret = rafiki.query(job=infer_id, data={"img": photos.test_x[i]})
        correct += int(ret["label"] == photos.test_y[i])
    print(f"trained {[m['model_name'] for m in models]}; "
          f"test accuracy {correct}/{len(photos.test_y)}")
    return 0


def _cmd_sql(args) -> int:
    from repro.sqlext import Column, Database

    db = Database()
    db.create_table("foodlog", [
        Column("user_id", "integer"), Column("age", "integer", not_null=True),
        Column("food", "text", not_null=True),
    ], primary_key=("user_id",))
    rng = np.random.default_rng(args.seed)
    foods = ("laksa", "chicken rice", "salad")
    for i in range(args.rows):
        db.insert("foodlog", user_id=i, age=int(rng.integers(18, 80)),
                  food=foods[int(rng.integers(0, 3))])
    db.udfs.register("age_band", lambda age: "young" if age < 40 else "older")
    sql = args.query or (
        "SELECT age_band(age) AS band, food, count(*) FROM foodlog "
        "WHERE age > 30 GROUP BY band, food"
    )
    print(sql)
    if args.explain:
        print(db.explain(sql))
    executors = ("planned", "naive") if args.executor == "both" else (args.executor,)
    results = {}
    for executor in executors:
        result = db.execute(sql, executor=executor)
        results[executor] = result
        for row in result.rows:
            print(" ", row)
        print(f"[{executor}] UDF calls: {result.udf_calls}, "
              f"batches: {result.udf_batches}, cache hits: {result.cache_hits}")
    if len(results) == 2:
        match = (results["planned"].columns == results["naive"].columns
                 and results["planned"].rows == results["naive"].rows)
        print(f"planned == naive: {match}")
        return 0 if match else 1
    return 0


def _cmd_telemetry(args) -> int:
    """Drive every subsystem briefly, then print the unified snapshot.

    The exercise touches tune (a small surrogate CoStudy), the
    parameter server (the study's kPut/warm-start traffic), serve (a
    short greedy single-model run), the cluster manager (job placement,
    heartbeats, a failure + recovery) and the gateway (a couple of
    routed requests), so the printed snapshot demonstrates the full
    metric surface.
    """
    from repro import telemetry
    from repro.api.gateway import Gateway
    from repro.core.serve import (
        DEFAULT_BATCH_SIZES,
        GreedySingleController,
        ServingEnv,
        SineArrival,
    )
    from repro.core.system import Rafiki
    from repro.core.tune import (
        CoStudyMaster,
        HyperConf,
        RandomSearchAdvisor,
        SurrogateTrainer,
        make_workers,
        run_study,
        section71_space,
    )
    from repro.paramserver import ParameterServer
    from repro.zoo import get_profile

    # tune + paramserver: a small collaborative study on the surrogate.
    conf = HyperConf(max_trials=8, max_epochs_per_trial=30, delta=0.005)
    param_server = ParameterServer()
    advisor = RandomSearchAdvisor(section71_space(), rng=np.random.default_rng(args.seed))
    master = CoStudyMaster("telemetry", conf, advisor, param_server,
                           rng=np.random.default_rng(args.seed + 7))
    workers = make_workers(master, SurrogateTrainer(seed=args.seed), param_server,
                           conf, num_workers=2)
    run_study(master, workers)

    # serve: a short greedy single-model run at a modest arrival rate.
    profile = get_profile("inception_v3")
    tau = 0.56
    env = ServingEnv(
        [profile],
        GreedySingleController(profile, DEFAULT_BATCH_SIZES, tau),
        SineArrival(150.0, period=60.0, rng=np.random.default_rng(args.seed)),
        tau,
        DEFAULT_BATCH_SIZES,
    )
    env.run(horizon=30.0)

    # cluster + gateway: place jobs, heartbeat, fail/recover a node,
    # then issue routed requests against the facade.
    system = Rafiki(nodes=3, gpus_per_node=3, seed=args.seed)
    for node_name in list(system.cluster.nodes):
        system.cluster.heartbeat(node_name)
    from repro.cluster.manager import JobKind

    system.cluster.submit_job(JobKind.TRAIN, name="tele", num_workers=2)
    victim = next(iter(system.cluster.nodes))
    system.cluster.fail_node(victim)
    system.cluster.recover_node(victim)
    gateway = Gateway(system)
    gateway.handle("GET", "/datasets")
    gateway.handle("GET", "/dashboard")

    registry = telemetry.get_registry()
    if args.format == "prom":
        print(telemetry.render_prometheus(registry), end="")
    else:
        tracer = telemetry.get_tracer() if args.trace else None
        print(telemetry.to_json(registry, tracer))
    return 0


def _cmd_chaos(args) -> int:
    """Run the seeded chaos scenario and summarise the recovery trace."""
    import json

    from repro.chaos.scenarios import run_chaos_scenario

    out = run_chaos_scenario(seed=args.seed)
    if args.verify:
        again = run_chaos_scenario(seed=args.seed)
        if again["trace"] != out["trace"]:
            print("FAIL: recovery traces differ across same-seed runs",
                  file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0
    tune, serve, facade = (out["results"][k] for k in ("tune", "serve", "facade"))
    print(f"chaos scenario (seed {out['seed']}): "
          f"{out['faults_injected']} faults injected")
    print(f"  kinds:  {', '.join(out['kinds_hit'])}")
    print(f"  points: {', '.join(out['points_hit'])}")
    print(f"tune:   {tune['trials']} trials, best {tune['best_performance']:.4f} "
          f"(trial {tune['best_trial_id']}), {tune['recoveries']} container "
          f"recoveries, {tune['wall_time'] / 3600:.1f} simulated hours")
    print(f"serve:  {serve['served']} served, {serve['requeued']} re-queued after "
          f"failed dispatch, {serve['dropped']} dropped, "
          f"SLO fraction {serve['slo_fraction']:.3f}")
    print(f"facade: statuses {facade['statuses']}; replicas live "
          f"{facade['live_during_outage']} during outage, "
          f"{facade['live_after_recovery']} after recovery "
          f"(breaker {facade['breaker_state']})")
    if args.verify:
        print("verify: recovery trace identical across two same-seed runs")
    return 0


def _cmd_tenants(args) -> int:
    """Run the tenant-isolation scenario and print the isolation verdict."""
    import json

    from repro.chaos.scenarios import run_tenant_isolation_scenario

    out = run_tenant_isolation_scenario(seed=args.seed)
    if args.verify:
        again = run_tenant_isolation_scenario(seed=args.seed)
        if again["trace"] != out["trace"]:
            print("FAIL: tenant-isolation traces differ across same-seed runs",
                  file=sys.stderr)
            return 1
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0
    cluster = out["results"]["cluster"]
    isolation = out["results"]["isolation"]
    serve_a = out["results"]["serve"]["tenant-a"]
    serve_b = out["results"]["serve"]["tenant-b"]
    ok = isolation["zero_b_sheds"] and isolation["b_p99_within_2tau"]
    print(f"tenant isolation (seed {out['seed']}): "
          f"{out['faults_injected']} admission faults aimed at tenant-a")
    print(f"cluster: flood {cluster['flood_states']}; "
          f"{cluster['crash_cycles']} crash cycles on {cluster['crash_host']}; "
          f"B survived: {cluster['b1_survived_crash_loop']}; "
          f"fair drain winner: {cluster['fair_share_winner']}")
    print(f"serve:   A offered {serve_a['offered']} "
          f"(shed rate {serve_a['shed_rate']:.2f}); "
          f"B offered {serve_b['offered']}, shed {serve_b['shed']}, "
          f"p99 {serve_b['p99_s'] * 1000:.0f}ms vs 2*tau "
          f"{2 * isolation['tau'] * 1000:.0f}ms")
    print(f"verdict: {'ISOLATED' if ok else 'VIOLATED'}")
    if args.verify:
        print("verify: trace identical across two same-seed runs")
    return 0 if ok else 1


def _cmd_store(args) -> int:
    """Exercise the chunked block store: dedup, kill/repair, audit."""
    import json

    if args.scenario:
        from repro.chaos.scenarios import run_store_kill_scenario

        out = run_store_kill_scenario(
            seed=args.seed, datanodes=args.nodes, replicas=args.replicas
        )
        if args.verify:
            again = run_store_kill_scenario(
                seed=args.seed, datanodes=args.nodes, replicas=args.replicas
            )
            if again["trace"] != out["trace"]:
                print("FAIL: recovery traces differ across same-seed runs",
                      file=sys.stderr)
                return 1
        if args.json:
            print(json.dumps(out, indent=2, sort_keys=True))
            return 0
        audit, results = out["audit"], out["results"]
        print(f"store-kill scenario (seed {out['seed']}): "
              f"{out['faults_injected']} faults injected")
        print(f"  mid-write kill: datanode {out['victims']['mid_write']['datanode']} "
              f"on {out['victims']['mid_write']['node']} "
              f"(version intact: {results['mid_write_intact']})")
        print(f"  mid-read kill:  datanode {out['victims']['mid_read']['datanode']} "
              f"on {out['victims']['mid_read']['node']} "
              f"(read intact: {results['mid_read_intact']})")
        print(f"  repair: {results['repaired_after_write']} copies after the "
              f"write kill, {results['repaired_final']} after recovery; "
              f"{audit['trash_reconciled']} stale chunks reconciled on rejoin")
        print(f"  audit: {audit['chunks']} chunks, lost {audit['lost']}, "
              f"under-replicated {audit['under_replicated']}, "
              f"corrupt files {out['corrupt']}")
        if args.verify:
            print("verify: recovery trace identical across two same-seed runs")
        return 1 if (out["corrupt"] or audit["lost"]) else 0

    from repro.data import BlockStore, FileNamespace

    store = BlockStore(nodes=args.nodes, replicas=args.replicas,
                       chunk_size=args.chunk_size)
    fs = FileNamespace(store, name="cli")
    rng = np.random.default_rng(args.seed)
    ckpt = bytearray(rng.integers(0, 256, args.size, dtype=np.uint8).tobytes())
    for version in range(args.versions):
        offset = (version * 997) % max(1, len(ckpt) - 64)
        ckpt[offset : offset + 64] = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
        fs.write("model/ckpt", bytes(ckpt), writer="cli")
    read_back_ok = fs.read("model/ckpt") == bytes(ckpt)
    killed = repaired = reconciled = None
    if args.kill and args.nodes > 1:
        victim = store.nodes[0].name
        store.kill_node(victim)
        repaired = store.repair()
        read_back_ok = read_back_ok and fs.read("model/ckpt") == bytes(ckpt)
        reconciled = store.rejoin_node(victim)
        killed = victim
    audit = store.audit()
    if args.json:
        print(json.dumps({
            "audit": audit,
            "versions": len(fs.versions("model/ckpt")),
            "read_back_ok": read_back_ok,
            "killed": killed,
            "repaired": repaired,
            "reconciled": reconciled,
        }, indent=2, sort_keys=True))
        return 0 if read_back_ok else 1
    print(f"block store: {args.nodes} datanodes, R={store.replicas}, "
          f"{store.chunk_size}B chunks")
    print(f"wrote {args.versions} near-duplicate versions of model/ckpt "
          f"({args.size}B each): {audit['chunks']} unique chunks")
    print(f"dedup: {audit['logical_bytes']}B logical -> "
          f"{audit['unique_bytes']}B unique ({audit['dedup_ratio']}x, "
          f"{audit['dedup_hits']} chunk hits)")
    if killed is not None:
        print(f"killed {killed}: {repaired} chunks re-replicated, "
              f"{reconciled} stale chunks reconciled on rejoin")
    print(f"audit: lost {audit['lost']}, under-replicated "
          f"{audit['under_replicated']}, live {audit['live_nodes']}, "
          f"read-back {'ok' if read_back_ok else 'CORRUPT'}")
    return 0 if read_back_ok else 1


def _cmd_serve(args) -> int:
    """Drive the serving path under generated load and summarise it."""
    import json

    from repro.zoo import get_profile

    profile = get_profile(args.model)
    latency = profile.inference_time
    if not args.frontend:
        from repro.core.serve import (
            DEFAULT_BATCH_SIZES,
            GreedySingleController,
            ServingEnv,
            SineArrival,
        )

        rate = args.rate if args.rate is not None else 150.0
        env = ServingEnv(
            [profile],
            GreedySingleController(profile, DEFAULT_BATCH_SIZES, args.tau),
            SineArrival(rate, period=60.0, rng=np.random.default_rng(args.seed)),
            args.tau,
            DEFAULT_BATCH_SIZES,
        )
        metrics = env.run(horizon=args.duration)
        summary = {
            "arrived": metrics.total_arrived,
            "served": metrics.total_served,
            "overdue": metrics.total_overdue,
            "overdue_fraction": metrics.overdue_fraction(),
            "p50_s": metrics.latency_quantile(0.50),
            "p95_s": metrics.latency_quantile(0.95),
            "p99_s": metrics.latency_quantile(0.99),
        }
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"greedy serving for {args.duration:.0f}s at ~{rate:.0f} qps:")
            for key, value in sorted(summary.items()):
                print(f"  {key:<22} {value}")
        return 0

    from repro.core.serve import (
        FrontendConfig,
        LoadGenConfig,
        ReplicaPool,
        ScalingAdvisor,
        ServeFrontend,
        capacity_qps,
        run_load,
    )

    rate = args.rate
    if rate is None:
        rate = 1.2 * capacity_qps(latency, 64, 1)
    config = FrontendConfig(
        latency=latency,
        tau=args.tau,
        max_queue=args.max_queue,
        rate_limit=args.rate_limit,
    )
    frontend = ServeFrontend(config)
    pool = ReplicaPool(latency, replicas=args.replicas)
    load = LoadGenConfig(
        mode=args.mode,
        target_rate=rate,
        clients=args.clients,
        think_time=args.think_time,
        duration=args.duration,
        seed=args.seed,
    )
    advisor = ScalingAdvisor() if args.autoscale else None
    trace = run_load(frontend, pool, load, autoscaler=advisor)
    summary = trace.summary()
    summary["replicas_final"] = pool.size
    summary["fingerprint"] = trace.fingerprint()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"front end under {args.mode}-loop load for {args.duration:.0f}s "
          f"({args.replicas} replica(s), tau={args.tau}s):")
    print(f"  offered {summary['offered']} ({summary['offered_qps']:.1f} qps), "
          f"served {summary['served']} ({summary['sustained_qps']:.1f} qps), "
          f"shed {summary['shed']} ({100 * summary['shed_rate']:.1f}%)")
    print(f"  latency p50/p95/p99: {summary['p50_s'] * 1000:.1f} / "
          f"{summary['p95_s'] * 1000:.1f} / {summary['p99_s'] * 1000:.1f} ms "
          f"(SLO miss rate {100 * summary['slo_miss_rate']:.2f}%)")
    if summary["shed_by_reason"]:
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(summary["shed_by_reason"].items()))
        print(f"  shed by reason: {reasons}")
    if args.autoscale:
        print(f"  replicas after autoscaling: {pool.size}")
    print(f"  trace fingerprint: {summary['fingerprint'][:16]}…")
    return 0


_COMMANDS = {
    "profiles": _cmd_profiles,
    "ensemble": _cmd_ensemble,
    "tune": _cmd_tune,
    "demo": _cmd_demo,
    "sql": _cmd_sql,
    "telemetry": _cmd_telemetry,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "store": _cmd_store,
    "tenants": _cmd_tenants,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Weight initialisers.

Each initialiser takes the parameter shape and an RNG and returns a new
array in the engine's default compute dtype (float32 unless overridden
via :func:`repro.tensor.set_default_dtype`). The Gaussian standard
deviation is itself one of the hyper-parameters tuned in the paper's
Section 7.1 experiments.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dtype import default_dtype

__all__ = [
    "zeros_init",
    "constant_init",
    "gaussian_init",
    "glorot_uniform_init",
    "he_normal_init",
]


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros (the conventional bias initialiser)."""
    return np.zeros(shape, dtype=default_dtype())


def constant_init(value: float):
    """Return an initialiser filling the array with ``value``."""

    def _init(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full(shape, float(value), dtype=default_dtype())

    return _init


def gaussian_init(std: float = 0.01, mean: float = 0.0):
    """Gaussian initialiser with tunable standard deviation."""

    def _init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, std, size=shape).astype(default_dtype(), copy=False)

    return _init


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in/fan-out for dense ``(in, out)`` and conv ``(out, in, kh, kw)`` shapes."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    size = int(np.prod(shape))
    return size, size


def glorot_uniform_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(default_dtype(), copy=False)


def he_normal_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal initialisation (suited to ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(default_dtype(), copy=False)

"""Default compute dtype for the tensor engine.

The engine computes in ``float32`` by default: half the memory traffic
of ``float64`` roughly doubles throughput on the memory-bound im2col /
matmul hot paths, and training accuracy is unaffected at the scales
this engine targets. Numerical-gradient checks and other code that
needs double precision can switch per-process via
:func:`set_default_dtype` (or temporarily with :func:`using_dtype`).

Initialisers, layer buffers, :meth:`Network.forward` input casting and
loss gradients all consult :func:`default_dtype`, so flipping it flows
through the whole engine.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["default_dtype", "set_default_dtype", "using_dtype"]

_ALLOWED = (np.float32, np.float64)

_default_dtype: np.dtype = np.dtype(np.float32)


def default_dtype() -> np.dtype:
    """The engine-wide compute dtype (``float32`` unless overridden)."""
    return _default_dtype


def set_default_dtype(dtype) -> np.dtype:
    """Set the engine-wide compute dtype; returns the previous one.

    Only ``float32`` and ``float64`` are supported. Already-built
    networks keep their existing parameter dtype; the setting applies
    to arrays created afterwards.
    """
    global _default_dtype
    resolved = np.dtype(dtype)
    if resolved.type not in _ALLOWED:
        raise ConfigurationError(
            f"default dtype must be float32 or float64, got {resolved}"
        )
    previous = _default_dtype
    _default_dtype = resolved
    return previous


@contextlib.contextmanager
def using_dtype(dtype) -> Iterator[np.dtype]:
    """Context manager that temporarily switches the default dtype."""
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)

"""A from-scratch NumPy deep-learning engine.

This package stands in for Apache SINGA / TensorFlow in the paper's
stack. It implements the pieces Rafiki's services actually exercise:

* layers with explicit forward/backward passes (dense, convolution,
  pooling, batch normalisation, dropout, activations),
* losses and evaluation metrics,
* SGD-family optimisers with learning-rate schedules and weight decay
  (the Table 1 group-3 hyper-parameters),
* a :class:`~repro.tensor.network.Network` container with *named*
  parameters and shape-matched warm starting, which is what the
  collaborative tuning scheme (CoStudy) relies on.
"""

from repro.tensor.dtype import default_dtype, set_default_dtype, using_dtype
from repro.tensor.initializers import (
    constant_init,
    gaussian_init,
    glorot_uniform_init,
    he_normal_init,
    zeros_init,
)
from repro.tensor.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.tensor.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy
from repro.tensor.metrics import accuracy, confusion_matrix, f1_score, top_k_accuracy
from repro.tensor.network import Network
from repro.tensor.recurrent import RNN, Embedding
from repro.tensor.optimizers import (
    SGD,
    Adam,
    ConstantSchedule,
    ExponentialDecaySchedule,
    LearningRateSchedule,
    Optimizer,
    RMSProp,
    StepDecaySchedule,
)
from repro.tensor.training import TrainResult, evaluate, train_epoch

__all__ = [
    "default_dtype",
    "set_default_dtype",
    "using_dtype",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "BatchNorm",
    "Embedding",
    "RNN",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Network",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "zeros_init",
    "constant_init",
    "gaussian_init",
    "glorot_uniform_init",
    "he_normal_init",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "f1_score",
    "train_epoch",
    "evaluate",
    "TrainResult",
]

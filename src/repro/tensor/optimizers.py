"""Optimisers and learning-rate schedules.

The group-3 hyper-parameters of Table 1 — initial learning rate,
momentum, weight decay, and the decay method/rate — all live here so
that the tuning service can sweep them against real training runs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
]


class LearningRateSchedule:
    """Maps a step index to a learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class ConstantSchedule(LearningRateSchedule):
    """A fixed learning rate."""

    def __init__(self, lr: float):
        self.lr = check_positive("lr", lr)

    def __call__(self, step: int) -> float:
        return self.lr


class StepDecaySchedule(LearningRateSchedule):
    """Multiply the rate by ``factor`` every ``every`` steps.

    This is the classic "drop the SGD learning rate from 0.1 to 0.01"
    schedule the paper's Section 4.2.2 observation is based on.
    """

    def __init__(self, lr: float, factor: float = 0.1, every: int = 1000):
        self.lr = check_positive("lr", lr)
        self.factor = check_non_negative("factor", factor)
        self.every = int(check_positive("every", every))

    def __call__(self, step: int) -> float:
        return self.lr * self.factor ** (step // self.every)


class ExponentialDecaySchedule(LearningRateSchedule):
    """``lr * decay**step`` with ``decay`` slightly below 1."""

    def __init__(self, lr: float, decay: float = 0.999):
        self.lr = check_positive("lr", lr)
        if not 0.0 < decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay

    def __call__(self, step: int) -> float:
        return self.lr * self.decay**step


def _as_schedule(lr: float | LearningRateSchedule) -> LearningRateSchedule:
    if isinstance(lr, LearningRateSchedule):
        return lr
    return ConstantSchedule(float(lr))


class Optimizer:
    """Base optimiser: applies updates to named parameter dicts.

    ``step(params, grads)`` updates each array in ``params`` in place
    using the gradient under the same key. Per-parameter state (momentum
    buffers etc.) is keyed by parameter name, so warm-started networks
    keep independent state.
    """

    def __init__(self, lr: float | LearningRateSchedule, weight_decay: float = 0.0):
        self.schedule = _as_schedule(lr)
        self.weight_decay = check_non_negative("weight_decay", weight_decay)
        self.steps = 0
        # Reused scratch buffers for the weight-decayed gradient, keyed
        # by parameter name, so the hot loop allocates nothing per step.
        self._decay_buf: dict[str, np.ndarray] = {}

    @property
    def current_lr(self) -> float:
        return self.schedule(self.steps)

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        lr = self.schedule(self.steps)
        self.steps += 1
        for name, value in params.items():
            grad = grads[name]
            if self.weight_decay and value.ndim > 1:
                buf = self._decay_buf.get(name)
                if buf is None or buf.shape != value.shape or buf.dtype != value.dtype:
                    buf = np.empty_like(value)
                    self._decay_buf[name] = buf
                np.multiply(value, self.weight_decay, out=buf)
                buf += grad
                grad = buf
            self._update(name, value, grad, lr)

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray, lr: float) -> None:
        raise NotImplementedError

    def reset_state(self) -> None:
        """Drop per-parameter state (used when re-initialising a trial)."""
        self._decay_buf.clear()


class SGD(Optimizer):
    """Stochastic gradient descent with (optionally Nesterov) momentum."""

    def __init__(
        self,
        lr: float | LearningRateSchedule = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)
        self._velocity: dict[str, np.ndarray] = {}

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray, lr: float) -> None:
        if self.momentum == 0.0:
            param -= lr * grad
            return
        vel = self._velocity.get(name)
        if vel is None:
            vel = np.zeros_like(param)
            self._velocity[name] = vel
        vel *= self.momentum
        vel -= lr * grad
        if self.nesterov:
            param += self.momentum * vel - lr * grad
        else:
            param += vel

    def reset_state(self) -> None:
        super().reset_state()
        self._velocity.clear()


class RMSProp(Optimizer):
    """RMSProp with running mean of squared gradients."""

    def __init__(
        self,
        lr: float | LearningRateSchedule = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr, weight_decay)
        if not 0.0 < rho < 1.0:
            raise ConfigurationError(f"rho must be in (0, 1), got {rho}")
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq: dict[str, np.ndarray] = {}

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray, lr: float) -> None:
        sq = self._sq.get(name)
        if sq is None:
            sq = np.zeros_like(param)
            self._sq[name] = sq
        sq *= self.rho
        sq += (1.0 - self.rho) * grad**2
        param -= lr * grad / (np.sqrt(sq) + self.eps)

    def reset_state(self) -> None:
        super().reset_state()
        self._sq.clear()


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        lr: float | LearningRateSchedule = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr, weight_decay)
        for label, beta in (("beta1", beta1), ("beta2", beta2)):
            if not 0.0 <= beta < 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1), got {beta}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def _update(self, name: str, param: np.ndarray, grad: np.ndarray, lr: float) -> None:
        m = self._m.setdefault(name, np.zeros_like(param))
        v = self._v.setdefault(name, np.zeros_like(param))
        t = self._t.get(name, 0) + 1
        self._t[name] = t
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        super().reset_state()
        self._m.clear()
        self._v.clear()
        self._t.clear()

"""A sequential network container with named parameters.

The network namespaces every layer parameter as
``"<layer-name>/<param-name>"`` and exposes them as flat dictionaries.
Two features matter to Rafiki:

* :meth:`Network.state_dict` / :meth:`Network.load_state_dict` move
  parameters to and from the parameter server;
* :meth:`Network.warm_start` copies every *shape-matched* parameter
  from a checkpoint into this network — the mechanism the collaborative
  tuning scheme (Section 4.2.2) uses to reuse layer weights across
  trials whose architectures only partially agree.
"""

from __future__ import annotations

import io
import pickle
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tensor.dtype import default_dtype
from repro.tensor.layers import Layer
from repro.tensor.losses import softmax

__all__ = ["Network"]


class Network:
    """An ordered stack of layers trained with explicit backprop."""

    def __init__(self, layers: Sequence[Layer], name: str = "net"):
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate layer names in network: {names}")
        self.name = name
        self.layers: list[Layer] = list(layers)
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> "Network":
        """Create all parameters for ``input_shape`` (without batch dim)."""
        shape = tuple(int(s) for s in input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape, rng)
        self.output_shape = shape
        return self

    @property
    def built(self) -> bool:
        return self.output_shape is not None

    def _require_built(self) -> None:
        if not self.built:
            raise ConfigurationError("network is not built; call build(input_shape, rng) first")

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        out = np.asarray(x, dtype=default_dtype())
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities (softmax over the final logits)."""
        return softmax(self.forward(x, training=False))

    def predict_labels(self, x: np.ndarray) -> np.ndarray:
        """Arg-max class labels."""
        return np.argmax(self.forward(x, training=False), axis=1)

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    # ------------------------------------------------------------------
    # parameter access
    # ------------------------------------------------------------------

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Flat, live view of all parameters (mutations update the net)."""
        out: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for pname, value in layer.params.items():
                out[f"{layer.name}/{pname}"] = value
        return out

    @property
    def grads(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for pname, value in layer.grads.items():
                out[f"{layer.name}/{pname}"] = value
        return out

    @property
    def buffers(self) -> dict[str, np.ndarray]:
        """Non-trainable state (e.g. batch-norm running statistics)."""
        out: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for bname, value in layer.buffers.items():
                out[f"{layer.name}/{bname}"] = value
        return out

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.layers)

    #: leaf names that identify non-trainable buffers in a state dict.
    _BUFFER_LEAVES = frozenset({"running_mean", "running_var"})

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of all parameters and buffers (for the parameter server)."""
        out = {name: value.copy() for name, value in self.params.items()}
        out.update({name: value.copy() for name, value in self.buffers.items()})
        return out

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers by exact name; shapes must match."""
        own = dict(self.params)
        own.update(self.buffers)
        missing = [name for name in own if name not in state]
        if strict and missing:
            raise ConfigurationError(f"state dict is missing parameters: {missing}")
        for name, value in state.items():
            if name not in own:
                if strict:
                    raise ConfigurationError(f"unexpected parameter {name!r}")
                continue
            if own[name].shape != value.shape:
                raise ConfigurationError(
                    f"shape mismatch for {name!r}: {own[name].shape} vs {value.shape}"
                )
            own[name][...] = value

    @classmethod
    def _is_buffer_name(cls, name: str) -> bool:
        return name.rsplit("/", 1)[-1] in cls._BUFFER_LEAVES

    def warm_start(self, state: dict[str, np.ndarray]) -> list[str]:
        """Copy every shape-matched parameter from ``state``.

        Matching is positional-by-kind rather than by exact name: the
        i-th parameter of a given shape in the checkpoint initialises
        the i-th same-shape parameter here. This reproduces the paper's
        rule that "the shape matched W" from the parameter server can
        initialise layers of a *different* architecture. Buffers
        (running statistics) only match buffers with the same leaf name,
        never trainable weights. Returns the list of local names that
        were initialised.
        """
        param_pool: dict[tuple[int, ...], list[np.ndarray]] = {}
        buffer_pool: dict[tuple[str, tuple[int, ...]], list[np.ndarray]] = {}
        for name, value in state.items():
            if self._is_buffer_name(name):
                leaf = name.rsplit("/", 1)[-1]
                buffer_pool.setdefault((leaf, value.shape), []).append(value)
            else:
                param_pool.setdefault(value.shape, []).append(value)
        loaded: list[str] = []
        for name, own_value in self.params.items():
            candidates = param_pool.get(own_value.shape)
            if candidates:
                own_value[...] = candidates.pop(0)
                loaded.append(name)
        for name, own_value in self.buffers.items():
            leaf = name.rsplit("/", 1)[-1]
            candidates = buffer_pool.get((leaf, own_value.shape))
            if candidates:
                own_value[...] = candidates.pop(0)
                loaded.append(name)
        return loaded

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------

    def save_bytes(self) -> bytes:
        """Serialise the parameter state (not the architecture)."""
        buffer = io.BytesIO()
        pickle.dump(self.state_dict(), buffer, protocol=pickle.HIGHEST_PROTOCOL)
        return buffer.getvalue()

    def load_bytes(self, blob: bytes) -> None:
        state = pickle.loads(blob)
        self.load_state_dict(state)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable architecture table."""
        self._require_built()
        lines = [f"Network {self.name!r} (input {self.input_shape})"]
        for layer in self.layers:
            lines.append(f"  {layer.name:<24} {type(layer).__name__:<12} params={layer.param_count()}")
        lines.append(f"  total parameters: {self.param_count()}")
        return "\n".join(lines)

    def layer_names(self) -> Iterable[str]:
        return [layer.name for layer in self.layers]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(name={self.name!r}, layers={len(self.layers)})"

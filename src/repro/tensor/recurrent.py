"""Sequence layers: embedding lookup and a vanilla RNN.

Figure 2's built-in table lists CharacterRNN among the sentiment
models; these layers let such models be expressed on the engine. The
RNN consumes ``(N, T, D)`` sequences and emits either the final hidden
state ``(N, H)`` (sequence classification) or the full state sequence
``(N, T, H)``. Backpropagation-through-time is explicit and exact.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tensor.initializers import glorot_uniform_init, zeros_init
from repro.tensor.layers import Layer

__all__ = ["Embedding", "RNN"]


class Embedding(Layer):
    """Token-id lookup table: ``(N, T)`` ints -> ``(N, T, D)`` floats."""

    def __init__(self, vocab_size: int, dim: int, name: str | None = None,
                 weight_init=glorot_uniform_init):
        super().__init__(name)
        if vocab_size < 1 or dim < 1:
            raise ConfigurationError("vocab_size and dim must be >= 1")
        self.vocab_size = int(vocab_size)
        self.dim = int(dim)
        self.weight_init = weight_init
        self._ids: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ConfigurationError(f"Embedding expects (T,) token input, got {input_shape}")
        self.params["W"] = self.weight_init((self.vocab_size, self.dim), rng)
        self.grads["W"] = np.zeros_like(self.params["W"])
        self.built = True
        return (input_shape[0], self.dim)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        ids = np.asarray(x, dtype=np.int64)
        if ids.min() < 0 or ids.max() >= self.vocab_size:
            raise ConfigurationError(
                f"token ids must be in [0, {self.vocab_size}), got "
                f"[{ids.min()}, {ids.max()}]"
            )
        self._ids = ids
        return self.params["W"][ids]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._ids is not None
        np.add.at(self.grads["W"], self._ids, grad_out)
        # token ids are not differentiable; return zeros of input shape
        return np.zeros(self._ids.shape, dtype=self.params["W"].dtype)


class RNN(Layer):
    """Vanilla tanh RNN: ``h_t = tanh(x_t Wx + h_{t-1} Wh + b)``."""

    def __init__(self, hidden: int, return_sequences: bool = False,
                 name: str | None = None, weight_init=glorot_uniform_init,
                 bias_init=zeros_init):
        super().__init__(name)
        if hidden < 1:
            raise ConfigurationError(f"hidden must be >= 1, got {hidden}")
        self.hidden = int(hidden)
        self.return_sequences = bool(return_sequences)
        self.weight_init = weight_init
        self.bias_init = bias_init
        self._x: np.ndarray | None = None
        self._states: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 2:
            raise ConfigurationError(f"RNN expects (T, D) input, got {input_shape}")
        steps, dim = input_shape
        self.params["Wx"] = self.weight_init((dim, self.hidden), rng)
        self.params["Wh"] = self.weight_init((self.hidden, self.hidden), rng)
        self.params["b"] = self.bias_init((self.hidden,), rng)
        for key in ("Wx", "Wh", "b"):
            self.grads[key] = np.zeros_like(self.params[key])
        self.built = True
        if self.return_sequences:
            return (steps, self.hidden)
        return (self.hidden,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, steps, _dim = x.shape
        self._x = x
        states = np.zeros((n, steps + 1, self.hidden), dtype=x.dtype)
        wx, wh, b = self.params["Wx"], self.params["Wh"], self.params["b"]
        for t in range(steps):
            states[:, t + 1] = np.tanh(x[:, t] @ wx + states[:, t] @ wh + b)
        self._states = states
        if self.return_sequences:
            return states[:, 1:]
        return states[:, -1]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None and self._states is not None
        x, states = self._x, self._states
        n, steps, dim = x.shape
        wx, wh = self.params["Wx"], self.params["Wh"]
        grad_x = np.zeros_like(x)
        grad_h_next = np.zeros((n, self.hidden), dtype=x.dtype)
        for t in range(steps - 1, -1, -1):
            if self.return_sequences:
                grad_h = grad_out[:, t] + grad_h_next
            elif t == steps - 1:
                grad_h = grad_out + grad_h_next
            else:
                grad_h = grad_h_next
            h_t = states[:, t + 1]
            grad_pre = grad_h * (1.0 - h_t**2)
            self.grads["Wx"] += x[:, t].T @ grad_pre
            self.grads["Wh"] += states[:, t].T @ grad_pre
            self.grads["b"] += grad_pre.sum(axis=0)
            grad_x[:, t] = grad_pre @ wx.T
            grad_h_next = grad_pre @ wh.T
        return grad_x

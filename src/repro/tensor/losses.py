"""Loss functions.

A loss exposes ``forward(logits, targets) -> float`` and
``backward() -> grad_logits`` (the mean-reduced gradient, ready to feed
into the network's backward pass).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "softmax"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class Loss:
    """Base class for losses."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy over integer class labels."""

    def __init__(self):
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        labels = np.asarray(target)
        if labels.ndim != 1:
            raise ConfigurationError(
                f"SoftmaxCrossEntropy expects integer labels of shape (N,), got {labels.shape}"
            )
        if labels.shape[0] != prediction.shape[0]:
            raise ConfigurationError(
                f"batch mismatch: {prediction.shape[0]} logits vs {labels.shape[0]} labels"
            )
        probs = softmax(prediction)
        self._probs = probs
        self._labels = labels
        picked = probs[np.arange(labels.shape[0]), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        assert self._probs is not None and self._labels is not None
        n = self._labels.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return grad / n


class MeanSquaredError(Loss):
    """Mean squared error over arbitrary-shape targets."""

    def __init__(self):
        self._diff: np.ndarray | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        target = np.asarray(target, dtype=prediction.dtype)
        if target.shape != prediction.shape:
            raise ConfigurationError(
                f"shape mismatch: prediction {prediction.shape} vs target {target.shape}"
            )
        self._diff = prediction - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        assert self._diff is not None
        return 2.0 * self._diff / self._diff.size

"""Evaluation metrics.

The inference service's notion of "accuracy" (Section 5) covers a range
of measurements — top-1 accuracy, precision/recall/F1, AUC — so these
are provided as plain functions over NumPy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "precision_recall",
    "f1_score",
    "auc_score",
]


def _check_lengths(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[0] != b.shape[0]:
        raise ConfigurationError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.shape[0] == 0:
        raise ConfigurationError("metrics require at least one example")


def accuracy(predicted: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact label matches."""
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    _check_lengths(predicted, labels)
    return float(np.mean(predicted == labels))


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of examples whose true label is in the top-k scores."""
    scores = np.asarray(scores)
    labels = np.asarray(labels)
    _check_lengths(scores, labels)
    if k < 1 or k > scores.shape[1]:
        raise ConfigurationError(f"k must be in [1, {scores.shape[1]}], got {k}")
    topk = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    return float(np.mean([labels[i] in topk[i] for i in range(labels.shape[0])]))


def confusion_matrix(predicted: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``matrix[i, j]`` counts examples of true class i predicted as j."""
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    _check_lengths(predicted, labels)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predicted), 1)
    return matrix


def precision_recall(
    predicted: np.ndarray, labels: np.ndarray, positive: int = 1
) -> tuple[float, float]:
    """Binary precision and recall for the ``positive`` class."""
    predicted = np.asarray(predicted)
    labels = np.asarray(labels)
    _check_lengths(predicted, labels)
    tp = int(np.sum((predicted == positive) & (labels == positive)))
    fp = int(np.sum((predicted == positive) & (labels != positive)))
    fn = int(np.sum((predicted != positive) & (labels == positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall


def f1_score(predicted: np.ndarray, labels: np.ndarray, positive: int = 1) -> float:
    """Binary F1 for the ``positive`` class."""
    precision, recall = precision_recall(predicted, labels, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    _check_lengths(scores, labels)
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    if pos.size == 0 or neg.size == 0:
        raise ConfigurationError("AUC requires both positive and negative examples")
    from scipy.stats import rankdata

    ranks = rankdata(np.concatenate([pos, neg]))
    rank_sum_pos = ranks[: pos.size].sum()
    auc = (rank_sum_pos - pos.size * (pos.size + 1) / 2.0) / (pos.size * neg.size)
    return float(auc)

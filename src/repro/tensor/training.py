"""Mini-batch training and evaluation loops.

These are the primitives the tuning workers use when running *real*
(as opposed to surrogate) trials: one epoch of shuffled mini-batch SGD,
and evaluation of accuracy/loss over a dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor.losses import Loss
from repro.tensor.network import Network
from repro.tensor.optimizers import Optimizer

__all__ = ["TrainResult", "train_epoch", "evaluate"]


@dataclass
class TrainResult:
    """Per-epoch training statistics."""

    epoch_losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)

    @property
    def best_accuracy(self) -> float:
        return max(self.val_accuracies) if self.val_accuracies else 0.0

    @property
    def epochs(self) -> int:
        return len(self.epoch_losses)


def train_epoch(
    network: Network,
    loss: Loss,
    optimizer: Optimizer,
    inputs: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
    augment=None,
) -> float:
    """Run one epoch of shuffled mini-batch SGD; return the mean loss.

    ``augment``, if given, is applied to each input batch before the
    forward pass (the group-1 preprocessing knobs of Table 1).
    """
    n = inputs.shape[0]
    order = rng.permutation(n)
    total, batches = 0.0, 0
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        batch_x = inputs[idx]
        batch_y = labels[idx]
        if augment is not None:
            batch_x = augment(batch_x, rng)
        network.zero_grads()
        logits = network.forward(batch_x, training=True)
        batch_loss = loss.forward(logits, batch_y)
        network.backward(loss.backward())
        optimizer.step(network.params, network.grads)
        total += batch_loss
        batches += 1
    return total / max(batches, 1)


def evaluate(
    network: Network,
    inputs: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of ``network`` over a dataset."""
    correct = 0
    n = inputs.shape[0]
    for start in range(0, n, batch_size):
        batch_x = inputs[start : start + batch_size]
        batch_y = labels[start : start + batch_size]
        predicted = network.predict_labels(batch_x)
        correct += int(np.sum(predicted == batch_y))
    return correct / n

"""Neural-network layers with explicit forward/backward passes.

Every layer exposes:

* ``forward(x, training)`` — compute the output, caching what backward
  needs;
* ``backward(grad_out)`` — return the gradient w.r.t. the input and
  accumulate parameter gradients into ``layer.grads``;
* ``params`` / ``grads`` — dictionaries keyed by local parameter name
  (``"W"``, ``"b"``, ...), which the :class:`~repro.tensor.network.Network`
  namespaces as ``"<layer-name>/<param>"``.

Parameter shapes are created lazily on the first forward pass (or by
``Network.build``), so layers can be declared without knowing input
shapes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tensor.dtype import default_dtype
from repro.tensor.im2col import col2im_auto, conv_output_size, im2col
from repro.tensor.initializers import glorot_uniform_init, zeros_init

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "BatchNorm",
]

Initializer = Callable[[tuple[int, ...], np.random.Generator], np.ndarray]


class Layer:
    """Base class for all layers."""

    _counter = 0

    def __init__(self, name: str | None = None):
        if name is None:
            Layer._counter += 1
            name = f"{type(self).__name__.lower()}_{Layer._counter}"
        self.name = name
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        #: non-trainable state saved/loaded with the parameters
        #: (e.g. batch-norm running statistics).
        self.buffers: dict[str, np.ndarray] = {}
        self.built = False

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        """Create parameters for ``input_shape`` and return the output shape.

        ``input_shape`` excludes the batch dimension.
        """
        self.built = True
        return input_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for key in self.grads:
            self.grads[key][...] = 0.0

    def param_count(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        units: int,
        name: str | None = None,
        weight_init: Initializer = glorot_uniform_init,
        bias_init: Initializer = zeros_init,
        use_bias: bool = True,
    ):
        super().__init__(name)
        if units <= 0:
            raise ConfigurationError(f"units must be > 0, got {units}")
        self.units = int(units)
        self.weight_init = weight_init
        self.bias_init = bias_init
        self.use_bias = use_bias
        self._x: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ConfigurationError(
                f"Dense expects flat input, got shape {input_shape}; add a Flatten layer"
            )
        in_features = input_shape[0]
        self.params["W"] = self.weight_init((in_features, self.units), rng)
        self.grads["W"] = np.zeros_like(self.params["W"])
        if self.use_bias:
            self.params["b"] = self.bias_init((self.units,), rng)
            self.grads["b"] = np.zeros_like(self.params["b"])
        self.built = True
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        out = x @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward called before forward"
        self.grads["W"] += self._x.T @ grad_out
        if self.use_bias:
            self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class Conv2D(Layer):
    """2-D convolution (NCHW) implemented via im2col."""

    def __init__(
        self,
        filters: int,
        kernel_size: int = 3,
        stride: int = 1,
        pad: int | str = "same",
        name: str | None = None,
        weight_init: Initializer = glorot_uniform_init,
        bias_init: Initializer = zeros_init,
    ):
        super().__init__(name)
        if filters <= 0 or kernel_size <= 0 or stride <= 0:
            raise ConfigurationError("filters, kernel_size and stride must be > 0")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        if pad == "same":
            if stride != 1:
                raise ConfigurationError("pad='same' requires stride=1")
            pad = (kernel_size - 1) // 2
        self.pad = int(pad)
        self.weight_init = weight_init
        self.bias_init = bias_init
        self._x_shape: tuple[int, int, int, int] | None = None
        self._cols: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ConfigurationError(f"Conv2D expects (C, H, W) input, got {input_shape}")
        c, h, w = input_shape
        k = self.kernel_size
        self.params["W"] = self.weight_init((self.filters, c, k, k), rng)
        self.params["b"] = self.bias_init((self.filters,), rng)
        self.grads["W"] = np.zeros_like(self.params["W"])
        self.grads["b"] = np.zeros_like(self.params["b"])
        out_h = conv_output_size(h, k, self.stride, self.pad)
        out_w = conv_output_size(w, k, self.stride, self.pad)
        if out_h <= 0 or out_w <= 0:
            raise ConfigurationError(
                f"Conv2D output collapsed to {(out_h, out_w)} for input {input_shape}"
            )
        self.built = True
        return (self.filters, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        self._x_shape = x.shape
        self._cols = im2col(x, k, k, self.stride, self.pad)
        w_mat = self.params["W"].reshape(self.filters, -1)
        out = w_mat @ self._cols + self.params["b"].reshape(-1, 1)
        out_h = conv_output_size(h, k, self.stride, self.pad)
        out_w = conv_output_size(w, k, self.stride, self.pad)
        return out.reshape(self.filters, out_h, out_w, n).transpose(3, 0, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, f, out_h, out_w = grad_out.shape
        grad_mat = grad_out.transpose(1, 2, 3, 0).reshape(f, -1)
        self.grads["b"] += grad_mat.sum(axis=1)
        self.grads["W"] += (grad_mat @ self._cols.T).reshape(self.params["W"].shape)
        w_mat = self.params["W"].reshape(self.filters, -1)
        grad_cols = w_mat.T @ grad_mat
        k = self.kernel_size
        return col2im_auto(grad_cols, self._x_shape, k, k, self.stride, self.pad)


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) windows."""

    def __init__(self, pool_size: int = 2, stride: int | None = None, name: str | None = None):
        super().__init__(name)
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        self._cols: np.ndarray | None = None
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        if out_h <= 0 or out_w <= 0:
            raise ConfigurationError(f"pooling collapsed input {input_shape}")
        self.built = True
        return (c, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        p, s = self.pool_size, self.stride
        self._x_shape = x.shape
        # Treat channels independently so each column holds one window.
        reshaped = x.reshape(n * c, 1, h, w)
        cols = im2col(reshaped, p, p, s, 0)  # (p*p, n*c*out_h*out_w)
        self._cols = cols
        self._argmax = np.argmax(cols, axis=0)
        out = cols[self._argmax, np.arange(cols.shape[1])]
        out_h = conv_output_size(h, p, s, 0)
        out_w = conv_output_size(w, p, s, 0)
        return out.reshape(out_h * out_w, n * c).T.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._argmax is not None and self._x_shape is not None
        n, c, h, w = self._x_shape
        p, s = self.pool_size, self.stride
        grad_flat = grad_out.reshape(n * c, -1).T.reshape(-1)
        grad_cols = np.zeros_like(self._cols)
        grad_cols[self._argmax, np.arange(grad_cols.shape[1])] = grad_flat
        grad_padded = col2im_auto(grad_cols, (n * c, 1, h, w), p, p, s, 0)
        return grad_padded.reshape(n, c, h, w)


class AvgPool2D(Layer):
    """Average pooling (global when ``pool_size`` equals the feature map)."""

    def __init__(self, pool_size: int = 2, stride: int | None = None, name: str | None = None):
        super().__init__(name)
        self.pool_size = int(pool_size)
        self.stride = int(stride) if stride is not None else self.pool_size
        self._x_shape: tuple[int, int, int, int] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        if out_h <= 0 or out_w <= 0:
            raise ConfigurationError(f"pooling collapsed input {input_shape}")
        self.built = True
        return (c, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        p, s = self.pool_size, self.stride
        self._x_shape = x.shape
        reshaped = x.reshape(n * c, 1, h, w)
        cols = im2col(reshaped, p, p, s, 0)
        out = cols.mean(axis=0)
        out_h = conv_output_size(h, p, s, 0)
        out_w = conv_output_size(w, p, s, 0)
        return out.reshape(out_h * out_w, n * c).T.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        n, c, h, w = self._x_shape
        p, s = self.pool_size, self.stride
        grad_flat = grad_out.reshape(n * c, -1).T.reshape(-1)
        grad_cols = np.tile(grad_flat / (p * p), (p * p, 1))
        grad_padded = col2im_auto(grad_cols, (n * c, 1, h, w), p, p, s, 0)
        return grad_padded.reshape(n, c, h, w)


class Flatten(Layer):
    """Reshape ``(N, ...)`` to ``(N, prod(...))``."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._x_shape: tuple[int, ...] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        self.built = True
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x_shape is not None
        return grad_out.reshape(self._x_shape)


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_out * self._mask


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad_out * (1.0 - self._out**2)


class Dropout(Layer):
    """Inverted dropout; identity at inference time.

    The drop rate is one of the Section 7.1 tuning knobs.
    """

    def __init__(self, rate: float = 0.5, name: str | None = None, seed: int = 0):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask /= keep
        self._mask = mask
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class BatchNorm(Layer):
    """Batch normalisation over the channel axis (2-D or 4-D inputs)."""

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5, name: str | None = None):
        super().__init__(name)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.eps = float(eps)
        self._cache: tuple | None = None
        self._ndim = 2

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        channels = input_shape[0]
        dtype = default_dtype()
        self._ndim = len(input_shape) + 1
        self.params["gamma"] = np.ones(channels, dtype=dtype)
        self.params["beta"] = np.zeros(channels, dtype=dtype)
        self.grads["gamma"] = np.zeros(channels, dtype=dtype)
        self.grads["beta"] = np.zeros(channels, dtype=dtype)
        self.buffers["running_mean"] = np.zeros(channels, dtype=dtype)
        self.buffers["running_var"] = np.ones(channels, dtype=dtype)
        self.built = True
        return input_shape

    @property
    def running_mean(self) -> np.ndarray | None:
        return self.buffers.get("running_mean")

    @running_mean.setter
    def running_mean(self, value: np.ndarray) -> None:
        self.buffers["running_mean"] = value

    @property
    def running_var(self) -> np.ndarray | None:
        return self.buffers.get("running_var")

    @running_var.setter
    def running_var(self, value: np.ndarray) -> None:
        self.buffers["running_var"] = value

    def _axes(self) -> tuple[int, ...]:
        return (0,) if self._ndim == 2 else (0, 2, 3)

    def _bshape(self) -> tuple[int, ...]:
        return (1, -1) if self._ndim == 2 else (1, -1, 1, 1)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        assert self.running_mean is not None and self.running_var is not None
        axes, bshape = self._axes(), self._bshape()
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            # Update the running statistics in place so references held
            # elsewhere (state dicts, aliasing tests) stay valid and no
            # buffer is reallocated per batch.
            self.running_mean *= m
            self.running_mean += (1 - m) * mean
            self.running_var *= m
            self.running_var += (1 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
        self._cache = (x_hat, inv_std) if training else None
        return self.params["gamma"].reshape(bshape) * x_hat + self.params["beta"].reshape(bshape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward requires a training-mode forward"
        x_hat, inv_std = self._cache
        axes, bshape = self._axes(), self._bshape()
        self.grads["gamma"] += (grad_out * x_hat).sum(axis=axes)
        self.grads["beta"] += grad_out.sum(axis=axes)
        gamma = self.params["gamma"].reshape(bshape)
        grad_xhat = grad_out * gamma
        term1 = grad_xhat
        term2 = grad_xhat.mean(axis=axes).reshape(bshape)
        term3 = x_hat * (grad_xhat * x_hat).mean(axis=axes).reshape(bshape)
        return (term1 - term2 - term3) * inv_std.reshape(bshape)

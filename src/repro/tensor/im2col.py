"""im2col / col2im transforms for convolution layers.

Convolutions are implemented as a single matrix multiply over patches
extracted by :func:`im2col`. Gradients flow back through
:func:`col2im`, which scatter-adds patch gradients into the padded
image. Layout is NCHW throughout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * pad - kernel) // stride + 1


def _patch_indices(
    channels: int, height: int, width: int, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    chans = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return chans, rows, cols, out_h, out_w


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int) -> np.ndarray:
    """Extract sliding patches from ``x`` (N, C, H, W).

    Returns an array of shape ``(C*kh*kw, N*out_h*out_w)`` whose columns
    are the flattened receptive fields.
    """
    n, c, h, w = x.shape
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    chans, rows, cols, _out_h, _out_w = _patch_indices(c, h, w, kernel_h, kernel_w, stride, pad)
    patches = padded[:, chans, rows, cols]  # (N, C*kh*kw, out_h*out_w)
    return patches.transpose(1, 2, 0).reshape(c * kernel_h * kernel_w, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch columns back to images."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    chans, rows, cols_idx, out_h, out_w = _patch_indices(c, h, w, kernel_h, kernel_w, stride, pad)
    reshaped = cols.reshape(c * kernel_h * kernel_w, out_h * out_w, n).transpose(2, 0, 1)
    np.add.at(padded, (slice(None), chans, rows, cols_idx), reshaped)
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]

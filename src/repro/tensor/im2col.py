"""im2col / col2im transforms for convolution layers.

Convolutions are implemented as a single matrix multiply over patches
extracted by :func:`im2col`. Gradients flow back through
:func:`col2im`, which scatter-adds patch gradients into the padded
image. Layout is NCHW throughout.

Hot-path notes (these two functions dominate Conv2D/pooling time):

* gather/scatter index sets depend only on the geometry signature
  ``(c, h, w, kh, kw, stride, pad)``, so they are memoised with an LRU
  cache instead of being rebuilt on every forward/backward call;
* :func:`im2col` extracts patches through
  ``np.lib.stride_tricks.sliding_window_view`` (a zero-copy view; the
  only copy is the final reshape into column layout), avoiding fancy
  indexing entirely;
* :func:`col2im` accumulates one dense strided add per kernel offset
  (``kh*kw`` slab additions with no scatter at all), 3-5x faster than
  the old ``np.add.at`` path and allocation-free beyond the output.
  A flat :func:`np.bincount` scatter-add over precomputed linear
  indices (:func:`col2im_bincount`) is kept as the reference scatter
  implementation — it also beats ``np.add.at`` on small workloads but
  pays a float64 weight cast that the slab path avoids;
* neither col2im variant wins everywhere: the slab path amortises its
  ``kh*kw`` Python-level loop over large dense adds, while bincount's
  single C-level scatter wins when each slab add is tiny.
  :func:`col2im_auto` — the variant layers actually call — picks by
  the measured crossover on the per-offset add size
  ``n*c*out_h*out_w`` (:data:`COL2IM_BINCOUNT_MAX_SLAB`).

Cached index arrays are shared across calls — treat them as read-only.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "col2im_auto",
    "col2im_bincount",
    "COL2IM_BINCOUNT_MAX_SLAB",
]

#: Per-kernel-offset slab size (``n*c*out_h*out_w``) at or below which
#: the flat bincount scatter beats the kh*kw strided slab adds.  The
#: slab path's cost is dominated by Python-loop and temporary overhead
#: when each add touches only a few KiB; bincount does one C-level pass
#: regardless of kernel size.  Crossover measured on CPython 3.11 /
#: NumPy (see benchmarks/bench_perf_engine.py): bincount still wins at
#: 2048 elements per offset and loses from ~3072 up.
COL2IM_BINCOUNT_MAX_SLAB = 2048


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * pad - kernel) // stride + 1


@lru_cache(maxsize=256)
def _patch_indices(
    channels: int, height: int, width: int, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    rows = i0.reshape(-1, 1) + i1.reshape(1, -1)
    cols = j0.reshape(-1, 1) + j1.reshape(1, -1)
    chans = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return chans, rows, cols, out_h, out_w


@lru_cache(maxsize=256)
def _scatter_indices(
    channels: int, height: int, width: int, kernel_h: int, kernel_w: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Flat linear indices into one padded ``(C, H+2p, W+2p)`` image.

    Element order matches ``im2col`` row order (c, kh, kw) crossed with
    output-position order (out_h, out_w).
    """
    chans, rows, cols, out_h, out_w = _patch_indices(
        channels, height, width, kernel_h, kernel_w, stride, pad
    )
    padded_w = width + 2 * pad
    flat = (chans * (height + 2 * pad) + rows) * padded_w + cols
    return np.ascontiguousarray(flat.ravel()), out_h, out_w


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, pad: int) -> np.ndarray:
    """Extract sliding patches from ``x`` (N, C, H, W).

    Returns an array of shape ``(C*kh*kw, out_h*out_w*N)`` whose columns
    are the flattened receptive fields (column order: output position
    major, image index minor).
    """
    n, c, h, w = x.shape
    if pad > 0:
        padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    else:
        padded = x
    windows = sliding_window_view(padded, (kernel_h, kernel_w), axis=(2, 3))
    if stride > 1:
        windows = windows[:, :, ::stride, ::stride]
    # (N, C, out_h, out_w, kh, kw) -> (C, kh, kw, out_h, out_w, N); the
    # reshape materialises the columns in (c*kh*kw, out_pos*N) layout.
    return windows.transpose(1, 4, 5, 2, 3, 0).reshape(c * kernel_h * kernel_w, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch columns back to images.

    Within one kernel offset ``(ki, kj)`` the receptive fields never
    collide, so the scatter decomposes into ``kh*kw`` dense strided
    additions — no atomics, no index arrays, native dtype throughout.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    patches = cols.reshape(c, kernel_h, kernel_w, out_h, out_w, n).transpose(
        5, 0, 1, 2, 3, 4
    )
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ki in range(kernel_h):
        rows = slice(ki, ki + stride * out_h, stride)
        for kj in range(kernel_w):
            padded[:, :, rows, kj : kj + stride * out_w : stride] += patches[:, :, ki, kj]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


def col2im_auto(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """:func:`col2im` dispatching on measured workload shape.

    Uses the bincount scatter when each kernel offset's dense add would
    be at most :data:`COL2IM_BINCOUNT_MAX_SLAB` elements (small images
    or tiny batches, where the slab loop's per-iteration overhead
    dominates), and the slab path otherwise.  Both variants are exact
    inverses of :func:`im2col`, so the choice never changes results.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    if n * c * out_h * out_w <= COL2IM_BINCOUNT_MAX_SLAB:
        return col2im_bincount(cols, x_shape, kernel_h, kernel_w, stride, pad)
    return col2im(cols, x_shape, kernel_h, kernel_w, stride, pad)


def col2im_bincount(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """:func:`col2im` via one flat ``np.bincount`` scatter-add."""
    n, c, h, w = x_shape
    flat_idx, out_h, out_w = _scatter_indices(c, h, w, kernel_h, kernel_w, stride, pad)
    image_size = c * (h + 2 * pad) * (w + 2 * pad)
    # Column index is position-major then image: bring values into
    # (N, c*kh*kw * out_pos) order so they line up with flat_idx.
    values = (
        cols.reshape(c * kernel_h * kernel_w, out_h * out_w, n)
        .transpose(2, 0, 1)
        .reshape(n, -1)
    )
    offsets = (np.arange(n, dtype=flat_idx.dtype) * image_size).reshape(-1, 1)
    indices = flat_idx + offsets
    summed = np.bincount(
        indices.ravel(), weights=values.ravel(), minlength=n * image_size
    )
    padded = summed.reshape(n, c, h + 2 * pad, w + 2 * pad).astype(cols.dtype, copy=False)
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]

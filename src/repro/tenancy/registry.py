"""Tenant registry: identities, per-tenant quotas, and a usage ledger.

The registry is the single source of truth for *who* may use the
shared cluster and *how much* of each governed resource they may hold
at once. Four resources are governed:

``trials``
    concurrently placed tuning workers (one per parallel trial),
``replicas``
    concurrently placed inference replicas,
``ps_bytes``
    bytes of parameter state held in the parameter server,
``store_bytes``
    logical bytes of blobs held in the data store.

Quotas are *concurrent-holding* limits, not rate limits: usage is
charged when a resource is acquired and released when it is freed, so
a denied request can succeed later without any configuration change.
Denials raise :class:`~repro.exceptions.QuotaExceededError` (HTTP 429
at the gateway); unknown or suspended tenants raise
:class:`~repro.exceptions.TenantAccessError` (HTTP 403).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.exceptions import QuotaExceededError, TenantAccessError
from repro.tenancy.context import DEFAULT_TENANT

__all__ = ["TenantQuota", "Tenant", "UsageLedger", "TenantRegistry"]

#: Resource names the ledger and quotas understand.
RESOURCES = ("trials", "replicas", "ps_bytes", "store_bytes")


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant concurrent-holding limits; ``None`` means unlimited."""

    #: maximum concurrently placed tuning workers (parallel trials).
    trials: int | None = None
    #: maximum concurrently placed inference replicas.
    replicas: int | None = None
    #: maximum bytes of parameter-server state held at once.
    ps_bytes: int | None = None
    #: maximum logical bytes of data-store blobs held at once.
    store_bytes: int | None = None

    def limit(self, resource: str) -> float | None:
        """Return the limit for ``resource`` (``None`` = unlimited)."""
        if resource not in RESOURCES:
            raise ValueError(f"unknown quota resource {resource!r}")
        return getattr(self, resource)


@dataclass
class Tenant:
    """One registered customer of the shared control plane."""

    name: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: fair-share weight: a tenant with weight 2 tolerates twice the
    #: dominant-resource share of a weight-1 tenant before the
    #: scheduler deprioritises it.
    weight: float = 1.0
    #: suspended tenants fail :meth:`TenantRegistry.resolve` with a 403.
    active: bool = True


class UsageLedger:
    """Tracks how much of each governed resource every tenant holds."""

    def __init__(self) -> None:
        self._usage: dict[str, dict[str, float]] = {}

    def usage(self, tenant: str, resource: str) -> float:
        """Current holding of ``resource`` charged to ``tenant``."""
        return self._usage.get(tenant, {}).get(resource, 0.0)

    def charge(self, tenant: str, resource: str, amount: float) -> float:
        """Add ``amount`` to the tenant's holding and return the new total."""
        per_tenant = self._usage.setdefault(tenant, {})
        per_tenant[resource] = per_tenant.get(resource, 0.0) + float(amount)
        self._publish(tenant, resource, per_tenant[resource])
        return per_tenant[resource]

    def release(self, tenant: str, resource: str, amount: float) -> float:
        """Subtract ``amount`` (floored at zero) and return the new total."""
        per_tenant = self._usage.setdefault(tenant, {})
        per_tenant[resource] = max(0.0, per_tenant.get(resource, 0.0) - float(amount))
        self._publish(tenant, resource, per_tenant[resource])
        return per_tenant[resource]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Copy of the full ledger, for dashboards and scenario traces."""
        return {t: dict(r) for t, r in sorted(self._usage.items())}

    @staticmethod
    def _publish(tenant: str, resource: str, value: float) -> None:
        telemetry.get_registry().gauge(
            "repro_tenant_usage",
            "Governed resource currently held, by tenant and resource.",
        ).set(value, tenant=tenant, resource=resource)


class TenantRegistry:
    """Registry of tenants with quota enforcement over a shared ledger.

    The ``default`` tenant is pre-registered with an unlimited quota so
    that pre-tenancy callers keep working unchanged. With
    ``strict=True`` the registry refuses unknown tenant names
    (:class:`~repro.exceptions.TenantAccessError`); the default lenient
    mode auto-registers them with unlimited quotas, matching how the
    reproduction's single-process deployments bootstrap.
    """

    def __init__(self, strict: bool = False):
        self.strict = bool(strict)
        self.ledger = UsageLedger()
        self._tenants: dict[str, Tenant] = {}
        self.register(DEFAULT_TENANT)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        quota: TenantQuota | None = None,
        weight: float = 1.0,
    ) -> Tenant:
        """Register (or re-register, updating quota/weight) a tenant."""
        if not name or not isinstance(name, str):
            raise TenantAccessError(str(name), "tenant name must be a non-empty string")
        tenant = Tenant(name=name, quota=quota or TenantQuota(), weight=float(weight))
        self._tenants[name] = tenant
        return tenant

    def suspend(self, name: str) -> None:
        """Mark a tenant inactive; subsequent resolves raise a 403 error."""
        self.resolve(name).active = False

    def reinstate(self, name: str) -> None:
        """Re-activate a suspended tenant."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise TenantAccessError(name, "unknown tenant")
        tenant.active = True

    def resolve(self, name: str) -> Tenant:
        """Look up ``name``, enforcing strictness and suspension."""
        tenant = self._tenants.get(name)
        if tenant is None:
            if self.strict:
                raise TenantAccessError(name, "unknown tenant")
            tenant = self.register(name)
        if not tenant.active:
            raise TenantAccessError(name, "tenant is suspended")
        return tenant

    def tenants(self) -> list[Tenant]:
        """All registered tenants, sorted by name."""
        return [self._tenants[name] for name in sorted(self._tenants)]

    def weight_of(self, name: str) -> float:
        """Fair-share weight of ``name`` (1.0 when unregistered).

        Unlike :meth:`resolve` this never raises: scheduler maths must
        stay well-defined for suspended tenants whose jobs are still
        queued, otherwise one suspension would wedge the whole queue.
        """
        tenant = self._tenants.get(name)
        return tenant.weight if tenant is not None else 1.0

    # ------------------------------------------------------------------
    # quota enforcement
    # ------------------------------------------------------------------

    def check(self, name: str, resource: str, amount: float) -> None:
        """Raise :class:`QuotaExceededError` if the charge would not fit."""
        tenant = self.resolve(name)
        limit = tenant.quota.limit(resource)
        if limit is None:
            return
        used = self.ledger.usage(name, resource)
        if used + float(amount) > limit:
            telemetry.get_registry().counter(
                "repro_tenant_quota_denials_total",
                "Requests denied by quota, by tenant and resource.",
            ).inc(tenant=name, resource=resource)
            raise QuotaExceededError(name, resource, limit, used, float(amount))

    def charge(self, name: str, resource: str, amount: float) -> None:
        """Atomically check the quota and charge the ledger."""
        self.check(name, resource, amount)
        self.ledger.charge(name, resource, amount)

    def release(self, name: str, resource: str, amount: float) -> None:
        """Return previously charged usage to the tenant's budget."""
        self.ledger.release(name, resource, amount)

    def usage(self, name: str, resource: str) -> float:
        """Current ledger holding for one tenant/resource pair."""
        return self.ledger.usage(name, resource)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TenantRegistry(tenants={sorted(self._tenants)}, strict={self.strict})"

"""Ambient tenant identity, propagated with :mod:`contextvars`.

The gateway resolves the tenant once per request and enters
:func:`tenant_context`; deep subsystems (the tuner's epoch loop, the
parameter server's byte accounting) read :func:`current_tenant` to
label metrics and charge quotas without every call signature having to
thread a ``tenant`` argument through the stack.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator

__all__ = ["DEFAULT_TENANT", "current_tenant", "tenant_context"]

#: Name of the implicit tenant used when a caller does not identify one.
#: Pre-tenancy callers keep working unchanged under this identity.
DEFAULT_TENANT = "default"

_current: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_tenant", default=DEFAULT_TENANT
)


def current_tenant() -> str:
    """Return the tenant name of the active request context."""
    return _current.get()


@contextlib.contextmanager
def tenant_context(tenant: str) -> Iterator[str]:
    """Run a block with :func:`current_tenant` bound to ``tenant``."""
    token = _current.set(str(tenant))
    try:
        yield str(tenant)
    finally:
        _current.reset(token)

"""Multi-tenant control plane: identities, quotas, fair-share inputs.

Rafiki is an analytics *service*: many customers share one cluster
(PAPER.md §1, §3). This package gives every request an owner. The
:class:`TenantRegistry` holds per-tenant quotas over four governed
resources (concurrent trials, serving replicas, parameter-server bytes,
data-store bytes) backed by a :class:`UsageLedger`; the ambient
:func:`current_tenant` context lets deep subsystems label telemetry and
charge quotas without threading a ``tenant`` argument everywhere. The
cluster manager consumes tenant weights for max-min fair-share
placement, and the serving front end layers per-tenant token buckets
over its per-client ones.
"""

from repro.exceptions import QuotaExceededError, TenantAccessError
from repro.tenancy.context import DEFAULT_TENANT, current_tenant, tenant_context
from repro.tenancy.registry import Tenant, TenantQuota, TenantRegistry, UsageLedger

__all__ = [
    "DEFAULT_TENANT",
    "QuotaExceededError",
    "Tenant",
    "TenantAccessError",
    "TenantQuota",
    "TenantRegistry",
    "UsageLedger",
    "current_tenant",
    "tenant_context",
]

"""Rafiki reproduction: machine learning as an analytics service.

The top-level package re-exports the user-facing SDK described in the
paper's Figure 2 — ``import_images``, ``HyperConf``, ``Train``,
``Inference``, ``get_models`` and ``query`` — plus the system facade
:class:`~repro.core.system.Rafiki`.

The SDK symbols are populated once :mod:`repro.api` is available; during
bottom-up construction they are imported lazily to keep substrate
packages importable on their own.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]


def __getattr__(name: str):
    """Lazily resolve subpackages, then SDK symbols from :mod:`repro.api.sdk`.

    Subpackages are tried first (``from repro import telemetry`` must
    work while :mod:`repro.api` is still mid-import), so resolving a
    submodule never drags the SDK — and its import cycle — in.
    """
    import importlib

    try:
        return importlib.import_module(f"repro.{name}")
    except ModuleNotFoundError:
        pass
    from repro.api import sdk

    try:
        return getattr(sdk, name)
    except AttributeError as exc:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from exc

"""The process-wide metrics registry: counters, gauges, histograms.

Modelled on the Prometheus client-library data model (and on how Tune
and TensorFlow centralise trial/step metrics): a metric is a named
*family* plus zero or more label sets, each label set owning its own
value. Instrumented code asks the registry for a metric by name
(get-or-create, so call sites need no registration ceremony) and
records into it:

    registry.counter("repro_gateway_requests_total").inc(route="/train")
    registry.gauge("repro_serve_queue_depth").set(17)
    registry.histogram("repro_serve_batch_size").observe(32)

Recording is a no-op while the registry is disabled, so instrumented
hot paths cost one attribute check when telemetry is off. Snapshots
(:meth:`MetricsRegistry.snapshot`) are plain JSON-serialisable dicts;
the text exposition lives in :mod:`repro.telemetry.export`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_string(key: _LabelKey) -> str:
    return ",".join(f"{name}={value}" for name, value in key)


class Metric:
    """Base class: a named family of per-label-set values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        self.name = name
        self.help = help
        self._registry = registry

    @property
    def enabled(self) -> bool:
        """Whether recording into this metric currently does anything."""
        return self._registry.enabled

    def snapshot(self) -> dict:
        """JSON-serialisable state of every label set of this family."""
        raise NotImplementedError

    def label_keys(self) -> list[_LabelKey]:
        """The label sets recorded so far (sorted)."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (requests, trials, failures)."""

    kind = "counter"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        super().__init__(name, help, registry)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled counter."""
        if not self.enabled:
            return
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        """Current count for the given label set (0 if never recorded)."""
        return self._values.get(_label_key(labels), 0.0)

    def label_keys(self) -> list[_LabelKey]:
        """The label sets recorded so far (sorted)."""
        return sorted(self._values)

    def snapshot(self) -> dict:
        """``{label-string: count}`` for every recorded label set."""
        return {_label_string(k): self._values[k] for k in sorted(self._values)}


class Gauge(Metric):
    """A value that can go up and down (queue depth, bytes in use)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"):
        super().__init__(name, help, registry)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        """Set the labelled gauge to ``value``."""
        if not self.enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to the labelled gauge."""
        if not self.enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from the labelled gauge."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current gauge value for the label set (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def label_keys(self) -> list[_LabelKey]:
        """The label sets recorded so far (sorted)."""
        return sorted(self._values)

    def snapshot(self) -> dict:
        """``{label-string: value}`` for every recorded label set."""
        return {_label_string(k): self._values[k] for k in sorted(self._values)}


class _HistogramChild:
    """Bucket counts, sum and count for one label set."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int):
        # one slot per finite bound plus the +Inf overflow slot
        self.bucket_counts = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket histogram with cumulative-``le`` semantics.

    A bucket with upper bound ``b`` counts observations ``<= b``
    (exactly the Prometheus convention, so boundary values land in the
    bucket whose bound they equal); everything above the largest bound
    falls into the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} buckets must be non-empty and increasing, got {buckets}"
            )
        self.buckets = bounds
        self._bounds_array = np.asarray(bounds, dtype=np.float64)
        self._children: dict[_LabelKey, _HistogramChild] = {}

    def _child(self, labels: dict) -> _HistogramChild:
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistogramChild(len(self.buckets))
        return child

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled histogram."""
        if not self.enabled:
            return
        value = float(value)
        child = self._child(labels)
        child.bucket_counts[bisect_left(self.buckets, value)] += 1
        child.sum += value
        child.count += 1

    def observe_many(self, values: Iterable[float], **labels) -> None:
        """Record a whole array of observations (vectorised)."""
        if not self.enabled:
            return
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                           dtype=np.float64).ravel()
        if array.size == 0:
            return
        child = self._child(labels)
        slots = np.searchsorted(self._bounds_array, array, side="left")
        counts = np.bincount(slots, minlength=len(self.buckets) + 1)
        for i, n in enumerate(counts):
            child.bucket_counts[i] += int(n)
        child.sum += float(array.sum())
        child.count += int(array.size)

    def child_state(self, **labels) -> tuple[list[int], float, int]:
        """``(bucket counts, sum, count)`` for one label set."""
        child = self._children.get(_label_key(labels))
        if child is None:
            return [0] * (len(self.buckets) + 1), 0.0, 0
        return list(child.bucket_counts), child.sum, child.count

    def label_keys(self) -> list[_LabelKey]:
        """The label sets recorded so far (sorted)."""
        return sorted(self._children)

    def snapshot(self) -> dict:
        """Per-label-set bucket counts, plus the bounds once."""
        out: dict = {"bounds": list(self.buckets), "series": {}}
        for key in sorted(self._children):
            child = self._children[key]
            out["series"][_label_string(key)] = {
                "buckets": list(child.bucket_counts),
                "sum": child.sum,
                "count": child.count,
            }
        return out


class MetricsRegistry:
    """Get-or-create home for every metric family in the process.

    One registry instance is installed process-wide (see
    :func:`repro.telemetry.get_registry`); instrumented modules fetch
    metrics from it by name at record time, so swapping the registry in
    a test re-routes all subsequent recording.
    """

    def __init__(self, enabled: bool = True):
        self._metrics: dict[str, Metric] = {}
        self.enabled = bool(enabled)

    def enable(self) -> None:
        """Turn recording on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off (instrumented paths become no-ops)."""
        self.enabled = False

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, self, **kwargs)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the named :class:`Histogram`.

        The bucket bounds are fixed by whichever call creates the
        family first; later calls may omit (or repeat) them.
        """
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Metric | None:
        """The named metric, or ``None`` if nothing recorded it yet."""
        return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        """Every registered metric family, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric family (a fresh start for tests)."""
        self._metrics.clear()

    def snapshot(self) -> dict:
        """The whole registry as one JSON-serialisable dict.

        Shape: ``{"counters"|"gauges"|"histograms": {name: {"help":
        ..., "values"|...}}}`` with names and label sets sorted, so two
        identical runs produce identical snapshots.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        section = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for metric in self.metrics():
            out[section[metric.kind]][metric.name] = {
                "help": metric.help,
                **(
                    {"values": metric.snapshot()}
                    if metric.kind != "histogram"
                    else metric.snapshot()
                ),
            }
        return out

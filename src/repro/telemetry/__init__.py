"""Unified telemetry: metrics registry, tracing, clocks, exporters.

The observability substrate every subsystem records into (the live data
behind the paper's Figure 18 dashboard). One process-wide
:class:`MetricsRegistry` collects counters, gauges and histograms from
tune, serve, the parameter server, the cluster manager and the gateway;
one :class:`Tracer` records nested timing spans; both read time from
the injectable clock in :mod:`repro.telemetry.clock`.

Typical use:

    from repro import telemetry

    telemetry.get_registry().counter("repro_gateway_requests_total").inc()
    with telemetry.get_tracer().span("profile_network", model="mlp"):
        ...
    print(telemetry.render_prometheus(telemetry.get_registry()))

Tests install fresh components via :func:`set_registry`,
:func:`set_tracer` and :func:`~repro.telemetry.clock.set_clock`;
:func:`disable` turns all recording off (instrumented hot paths then
cost a single attribute check).
"""

from __future__ import annotations

from repro.telemetry.clock import Clock, ManualClock, SystemClock, get_clock, set_clock
from repro.telemetry.export import render_prometheus, snapshot, to_json
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from repro.telemetry.tracer import Span, Tracer

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "get_clock",
    "set_clock",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "snapshot",
    "to_json",
    "render_prometheus",
    "get_registry",
    "set_registry",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "reset",
]

_registry = MetricsRegistry()
_tracer = Tracer()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry all instrumentation records into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable() -> None:
    """Turn recording on for the default registry and tracer."""
    _registry.enable()
    _tracer.enabled = True


def disable() -> None:
    """Turn recording off everywhere (hot paths become near-free)."""
    _registry.disable()
    _tracer.enabled = False


def reset() -> None:
    """Clear every recorded metric and span in the defaults."""
    _registry.reset()
    _tracer.reset()

"""Injectable time sources for all telemetry (and instrumented) timing.

Every timed code path in the library reads time through a
:class:`Clock` rather than calling ``time.*`` directly, so tests can
substitute a :class:`ManualClock` and make measured durations exact.
The process-wide default clock is a :class:`SystemClock`; swap it with
:func:`set_clock` (and restore the returned previous clock afterwards).
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "ManualClock", "get_clock", "set_clock"]


class Clock:
    """Interface for a monotonic time source measured in seconds."""

    def now(self) -> float:
        """Current time in seconds (monotonic, arbitrary epoch)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real monotonic clock (``time.perf_counter``)."""

    def now(self) -> float:
        """Seconds from ``time.perf_counter``."""
        return time.perf_counter()


class ManualClock(Clock):
    """A clock that only moves when told to — for deterministic tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """The manually set current time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative seconds ({seconds})")
        self._now += float(seconds)
        return self._now

    def set(self, now: float) -> None:
        """Jump the clock to an absolute time."""
        self._now = float(now)


_default_clock: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-wide default clock used by instrumented code."""
    return _default_clock


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` as the default; returns the previous clock."""
    global _default_clock
    previous = _default_clock
    _default_clock = clock
    return previous

"""Exporters: JSON snapshots and Prometheus-style text exposition.

Two views over the same :class:`~repro.telemetry.registry.MetricsRegistry`:

* :func:`snapshot` / :func:`to_json` — the registry as one nested dict
  (optionally with the tracer's spans), for dashboards and files;
* :func:`render_prometheus` — the plain-text exposition format every
  metrics scraper understands (``# HELP`` / ``# TYPE`` headers,
  ``name{label="v"} value`` samples, cumulative histogram buckets with
  an explicit ``+Inf``).

Both are deterministic: metric names, label sets and bucket bounds are
emitted in sorted order, so golden tests can compare exact strings.
"""

from __future__ import annotations

import json

from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.tracer import Tracer

__all__ = ["snapshot", "to_json", "render_prometheus"]


def snapshot(registry: MetricsRegistry, tracer: Tracer | None = None) -> dict:
    """The registry (and optionally the tracer) as one plain dict."""
    out = registry.snapshot()
    if tracer is not None:
        out["spans"] = tracer.export()
    return out


def to_json(registry: MetricsRegistry, tracer: Tracer | None = None,
            indent: int | None = 2) -> str:
    """:func:`snapshot`, serialised to a JSON string."""
    return json.dumps(snapshot(registry, tracer), indent=indent, sort_keys=True)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(label_key) -> str:
    if not label_key:
        return ""
    escaped = (
        (name, value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for name, value in label_key
    )
    return "{" + ",".join(f'{name}="{value}"' for name, value in escaped) + "}"


def _bound_str(bound: float) -> str:
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in metric.label_keys():
                counts, total, count = metric.child_state(**dict(key))
                cumulative = 0
                for bound, bucket_count in zip(metric.buckets, counts):
                    cumulative += bucket_count
                    labels = _format_labels(key + (("le", _bound_str(bound)),))
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                cumulative += counts[-1]
                labels = _format_labels(key + (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                lines.append(
                    f"{metric.name}_sum{_format_labels(key)} {_format_value(total)}"
                )
                lines.append(f"{metric.name}_count{_format_labels(key)} {count}")
        else:
            for key in metric.label_keys():
                value = metric.value(**dict(key))
                lines.append(f"{metric.name}{_format_labels(key)} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")

"""Span-based tracing with a context-manager API.

A span covers one timed operation (a profiled forward pass, a study
run, a gateway request); spans nest, and the tracer records the parent
relationship so an exported trace reconstructs the call tree. Time
comes from the injectable telemetry clock, so traces taken under a
:class:`~repro.telemetry.clock.ManualClock` have exact durations.

    tracer = Tracer(clock=ManualClock())
    with tracer.span("study", study="cli") as span:
        with tracer.span("trial", trial_id=1):
            ...
        span.tag(trials=1)
    tracer.export()  # -> list of plain dicts, parents before children
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry.clock import Clock, get_clock

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One recorded operation: a name, a time range and free-form tags."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float = 0.0
    tags: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end."""
        return self.end - self.start

    def tag(self, **tags) -> None:
        """Attach extra tags to the span (inside or after its scope)."""
        self.tags.update(tags)

    def to_dict(self) -> dict:
        """The span as a JSON-serialisable dict."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "tags": dict(self.tags),
        }


class Tracer:
    """Records nested spans against an injectable clock.

    Finished spans accumulate up to ``max_spans`` (oldest dropped
    first, so a long-running process cannot leak memory). Disable the
    tracer to make :meth:`span` a zero-recording no-op scope.
    """

    def __init__(self, clock: Clock | None = None, max_spans: int = 10_000,
                 enabled: bool = True):
        self._clock = clock
        self.max_spans = int(max_spans)
        self.enabled = bool(enabled)
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self.dropped = 0

    @property
    def clock(self) -> Clock:
        """The bound clock, or the process default when unbound."""
        return self._clock if self._clock is not None else get_clock()

    @contextmanager
    def span(self, name: str, **tags):
        """Open a span; yields the :class:`Span` for tagging.

        The span closes (its ``end`` stamped) when the ``with`` block
        exits, even on exception. Nested calls record the enclosing
        span as ``parent_id``.
        """
        if not self.enabled:
            yield Span(name=name, span_id=0, parent_id=None, start=0.0, tags=tags)
            return
        clock = self.clock
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=clock.now(),
            tags=dict(tags),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = clock.now()
            self._spans.append(span)
            if len(self._spans) > self.max_spans:
                overflow = len(self._spans) - self.max_spans
                del self._spans[:overflow]
                self.dropped += overflow

    @property
    def spans(self) -> list[Span]:
        """Finished spans in completion order."""
        return list(self._spans)

    def export(self) -> list[dict]:
        """Finished spans as JSON-serialisable dicts, start-ordered.

        Start order puts every parent before its children, which is the
        natural order for rendering a trace tree.
        """
        return [s.to_dict() for s in sorted(self._spans, key=lambda s: (s.start, s.span_id))]

    def reset(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        self._spans.clear()
        self.dropped = 0

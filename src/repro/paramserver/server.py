"""The parameter server.

Semantics follow Section 6.2:

* parameters are stored under ``(key, version)``; ``put`` appends a new
  version, ``get`` returns the latest unless a version is requested;
* hot parameters are served from an LRU cache; cold ones are pickled
  into the data store (the HDFS stand-in) and reloaded on demand;
* entries carry metadata — model name, dataset, measured performance,
  and a privacy flag. ``find_pretrained`` returns public checkpoints of
  the same model trained on *other* datasets (the training warm-up the
  paper cites from TFX);
* :meth:`fetch_shape_pool` exposes the "shape matched W" lookup used by
  the collaborative tuning scheme for architecture knobs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

import numpy as np

from repro import chaos, telemetry
from repro.data.store import DataStore
from repro.exceptions import ParameterNotFoundError
from repro.paramserver.cache import LRUCache
from repro.tenancy import TenantRegistry, current_tenant
from repro.utils.retry import RetryPolicy

__all__ = ["ParameterServer", "ParameterEntry", "shape_pool"]


@dataclass
class ParameterEntry:
    """Metadata for one stored parameter version."""

    key: str
    version: int
    model: str = ""
    dataset: str = ""
    performance: float = float("nan")
    public: bool = True
    nbytes: int = 0
    extra: dict = field(default_factory=dict)
    #: tenant whose ``ps_bytes`` quota this version is charged against,
    #: or ``None`` when stored without quota enforcement (repair copies,
    #: servers with no registry attached).
    tenant: str | None = None

    @property
    def path(self) -> str:
        return f"params/{self.key}/v{self.version}"


def _state_size(state: dict[str, np.ndarray]) -> int:
    return int(sum(value.nbytes for value in state.values()))


class ParameterServer:
    """Versioned parameter storage with an LRU hot cache.

    ``name`` identifies this server when it runs as one shard of a
    :class:`~repro.paramserver.sharded.ShardedParameterServer`: its
    telemetry series gain a ``shard=<name>`` label and its cache is
    registered as ``paramserver-<name>`` so per-shard hit ratios stay
    distinguishable. A standalone server (``name=None``) publishes the
    exact unlabelled series it always has.
    """

    def __init__(
        self,
        store: DataStore | None = None,
        cache_bytes: int = 256 * 1024 * 1024,
        retry: RetryPolicy | None = None,
        name: str | None = None,
        tenants: TenantRegistry | None = None,
    ):
        self.name = name
        #: when set, every put charges the ambient tenant's ``ps_bytes``
        #: quota (:class:`~repro.exceptions.QuotaExceededError` before
        #: anything is stored) and deletes release it.
        self.tenants = tenants
        self._store = store if store is not None else DataStore(
            "ps-backing" if name is None else f"ps-backing-{name}"
        )
        self._cache = LRUCache(
            cache_bytes, size_of=_state_size,
            name="paramserver" if name is None else f"paramserver-{name}",
        )
        self._entries: dict[str, list[ParameterEntry]] = {}
        self._stored_bytes = 0
        #: optional retry policy for push/pull; when set, injected
        #: faults at the ``paramserver.push``/``paramserver.pull``
        #: fault points (and any other RafikiError) are retried with
        #: deterministic backoff instead of propagating.
        self.retry = retry

    def _labels(self) -> dict:
        return {} if self.name is None else {"shard": self.name}

    @property
    def cache(self) -> LRUCache:
        return self._cache

    @property
    def store(self) -> DataStore:
        return self._store

    # ------------------------------------------------------------------
    # put / get
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        state: dict[str, np.ndarray],
        model: str = "",
        dataset: str = "",
        performance: float = float("nan"),
        public: bool = True,
        **extra,
    ) -> ParameterEntry:
        """Store a new version of ``key`` and return its entry.

        Passes through the ``paramserver.push`` fault point; with a
        :class:`~repro.utils.retry.RetryPolicy` configured (use
        ``retry_on=(InjectedFault,)`` so lookup errors still propagate
        immediately), injected failures and drops are retried with
        deterministic backoff.
        """
        if self.retry is not None:
            return self.retry.call(
                self._put_once, key, state, model, dataset, performance, public,
                name="paramserver.push", **extra,
            )
        return self._put_once(key, state, model, dataset, performance, public, **extra)

    def _put_once(
        self,
        key: str,
        state: dict[str, np.ndarray],
        model: str = "",
        dataset: str = "",
        performance: float = float("nan"),
        public: bool = True,
        **extra,
    ) -> ParameterEntry:
        chaos.fire("paramserver.push")
        entry = ParameterEntry(
            key=key,
            version=len(self._entries.get(key, [])) + 1,
            model=model,
            dataset=dataset,
            performance=performance,
            public=public,
            nbytes=_state_size(state),
            extra=dict(extra),
        )
        if self.tenants is not None:
            entry.tenant = current_tenant()
            self.tenants.charge(entry.tenant, "ps_bytes", entry.nbytes)
        state_copy = {name: value.copy() for name, value in state.items()}
        try:
            self._store.put_blob(
                entry.path, pickle.dumps(state_copy, pickle.HIGHEST_PROTOCOL)
            )
        except BaseException:
            # The blob never landed (store quota denial, injected
            # fault): roll back the ps_bytes charge and record no
            # version, or get() of a phantom entry would fail later.
            if self.tenants is not None:
                self.tenants.release(entry.tenant, "ps_bytes", entry.nbytes)
            raise
        versions = self._entries.setdefault(key, [])
        versions.append(entry)
        self._cache.put(entry.path, state_copy)
        self._stored_bytes += entry.nbytes
        registry = telemetry.get_registry()
        registry.counter(
            "repro_paramserver_push_total", "Parameter versions pushed (put)."
        ).inc(**self._labels())
        self._publish_storage_gauges()
        return entry

    def _publish_storage_gauges(self) -> None:
        registry = telemetry.get_registry()
        registry.gauge(
            "repro_paramserver_stored_bytes", "Total bytes across stored versions."
        ).set(self._stored_bytes, **self._labels())
        registry.gauge(
            "repro_paramserver_keys", "Distinct parameter keys stored."
        ).set(len(self._entries), **self._labels())

    def get(self, key: str, version: int | None = None) -> dict[str, np.ndarray]:
        """Fetch parameters (latest version unless specified).

        Passes through the ``paramserver.pull`` fault point (retried
        under the configured policy, like :meth:`put`).
        """
        if self.retry is not None:
            return self.retry.call(
                self._get_once, key, version, name="paramserver.pull"
            )
        return self._get_once(key, version)

    def _get_once(self, key: str, version: int | None = None) -> dict[str, np.ndarray]:
        chaos.fire("paramserver.pull")
        telemetry.get_registry().counter(
            "repro_paramserver_pull_total", "Parameter fetches (get)."
        ).inc(**self._labels())
        entry = self.get_entry(key, version)
        cached = self._cache.get(entry.path)
        if cached is not None:
            return {name: value.copy() for name, value in cached.items()}
        state = pickle.loads(self._store.get_blob(entry.path))
        self._cache.put(entry.path, state)
        return {name: value.copy() for name, value in state.items()}

    def get_entry(self, key: str, version: int | None = None) -> ParameterEntry:
        """Metadata of a stored version (latest unless specified)."""
        versions = self._entries.get(key)
        if not versions:
            raise ParameterNotFoundError(key)
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise ParameterNotFoundError(f"{key}@v{version}")
        return versions[version - 1]

    def has(self, key: str) -> bool:
        """Whether any version of ``key`` is stored."""
        return key in self._entries

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        return sorted(self._entries)

    def versions(self, key: str) -> int:
        """How many versions of ``key`` exist (0 when absent)."""
        return len(self._entries.get(key, []))

    def delete(self, key: str) -> None:
        """Drop every version of ``key`` from cache and backing store."""
        versions = self._entries.pop(key, None)
        if versions is None:
            raise ParameterNotFoundError(key)
        for entry in versions:
            self._cache.invalidate(entry.path)
            self._stored_bytes -= entry.nbytes
            if self.tenants is not None and entry.tenant is not None:
                self.tenants.release(entry.tenant, "ps_bytes", entry.nbytes)
            if self._store.has_blob(entry.path):
                self._store.delete_blob(entry.path)
        self._publish_storage_gauges()

    # ------------------------------------------------------------------
    # collaborative-tuning support
    # ------------------------------------------------------------------

    def put_if_better(
        self,
        key: str,
        state: dict[str, np.ndarray],
        performance: float,
        **meta,
    ) -> bool:
        """Store ``state`` only if it beats the stored performance.

        Implements the overwrite rule of Section 4.2.2: "If the
        performance of the new trial is better than the older one, we
        overwrite the W in the parameter server". A NaN candidate never
        displaces a real measurement (``NaN <= x`` is False for every
        ``x``, so without the explicit check a crashed trial's NaN
        would overwrite a better checkpoint).
        """
        if self.has(key):
            current = self.get_entry(key).performance
            if np.isnan(performance) and not np.isnan(current):
                return False
            if not np.isnan(current) and performance <= current:
                return False
        self.put(key, state, performance=performance, **meta)
        return True

    def fetch_shape_pool(self, key: str, version: int | None = None) -> dict[tuple[int, ...], list[np.ndarray]]:
        """Group a checkpoint's arrays by shape for shape-matched init."""
        return shape_pool(self.get(key, version))

    def find_pretrained(self, model: str, exclude_dataset: str = "") -> ParameterEntry | None:
        """Best *public* checkpoint of ``model`` from another dataset.

        Used for cross-dataset training warm-up: parameters trained for
        the same model on different data are shared when public.
        """
        best: ParameterEntry | None = None
        for versions in self._entries.values():
            for entry in versions:
                if not entry.public or entry.model != model:
                    continue
                if exclude_dataset and entry.dataset == exclude_dataset:
                    continue
                if best is None or (
                    not np.isnan(entry.performance)
                    and (np.isnan(best.performance) or entry.performance > best.performance)
                ):
                    best = entry
        return best

    # ------------------------------------------------------------------
    # replication support (used by the sharded data plane)
    # ------------------------------------------------------------------

    def history(self, key: str) -> list[ParameterEntry]:
        """Every stored version's entry, oldest first (empty if absent)."""
        return list(self._entries.get(key, []))

    def adopt_history(self, source: "ParameterServer", key: str) -> int:
        """Replace this server's history for ``key`` with ``source``'s.

        Control-plane re-replication: blobs are copied byte-for-byte
        from the source's backing store without passing through the
        ``paramserver.push`` fault point or the push counters — repair
        traffic is not client traffic. Returns the number of versions
        copied.
        """
        if self is source:
            return len(self._entries.get(key, []))
        if key in self._entries:
            self.delete(key)
        copied: list[ParameterEntry] = []
        for entry in source._entries.get(key, []):
            clone = ParameterEntry(
                key=key,
                version=entry.version,
                model=entry.model,
                dataset=entry.dataset,
                performance=entry.performance,
                public=entry.public,
                nbytes=entry.nbytes,
                extra=dict(entry.extra),
            )
            self._store.put_blob(clone.path, source._store.get_blob(entry.path))
            self._stored_bytes += clone.nbytes
            copied.append(clone)
        if copied:
            self._entries[key] = copied
        self._publish_storage_gauges()
        return len(copied)

    def wipe(self) -> None:
        """Drop every key, blob and cache entry (simulates shard death)."""
        for versions in self._entries.values():
            for entry in versions:
                if self.tenants is not None and entry.tenant is not None:
                    self.tenants.release(entry.tenant, "ps_bytes", entry.nbytes)
                if self._store.has_blob(entry.path):
                    self._store.delete_blob(entry.path)
        self._entries.clear()
        self._cache.clear()
        self._stored_bytes = 0
        self._publish_storage_gauges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterServer(name={self.name!r}, keys={len(self._entries)}, "
            f"cache_hit_rate={self._cache.hit_rate:.2f})"
        )


def shape_pool(state: dict[str, np.ndarray]) -> dict[tuple[int, ...], list[np.ndarray]]:
    """Group a checkpoint's arrays by shape (the "shape matched W" lookup)."""
    pool: dict[tuple[int, ...], list[np.ndarray]] = {}
    for value in state.values():
        pool.setdefault(value.shape, []).append(value)
    return pool

"""Distributed parameter server (Section 6.2).

A versioned key-value store for model parameters with an in-memory LRU
cache in front of cold storage (the :class:`~repro.data.store.DataStore`
standing in for HDFS). Frequently accessed parameters — e.g. the
current-best checkpoint during collaborative hyper-parameter tuning —
stay cached; everything else is persisted and re-read on demand.

For scale-out, :class:`~repro.paramserver.sharded.ShardedParameterServer`
consistent-hashes keys across several servers with R-way replication
and failover reads, behind the same API.
"""

from repro.paramserver.cache import LRUCache
from repro.paramserver.server import ParameterEntry, ParameterServer, shape_pool
from repro.paramserver.sharded import Shard, ShardedParameterServer

__all__ = [
    "ParameterServer",
    "ParameterEntry",
    "LRUCache",
    "ShardedParameterServer",
    "Shard",
    "shape_pool",
]

"""Sharded, replicated parameter-server data plane.

The single-process :class:`~repro.paramserver.server.ParameterServer`
is the shared substrate for collaborative tuning *and* ensemble
serving, which makes it the one component with no scale-out story. This
module gives it one, following the sharded parameter-server
architecture of the TensorFlow papers with the replication rules of
HDFS (the paper's storage layer):

* **consistent hashing** — every shard owns ``vnodes`` points on a hash
  ring; a key's *preference order* is the sequence of distinct shards
  met walking the ring clockwise from ``hash(key)``. Adding or losing a
  shard only remaps the keys adjacent to its ring points;
* **R-way replication** — a ``put`` lands on the first ``replicas``
  live shards of the preference order, preferring shards on distinct
  cluster nodes (HDFS rack-awareness) so one node failure cannot take
  every copy. Every replica holds the key's *full* version history, so
  any copy can serve any versioned read;
* **failover reads** — a ``get`` walks the holders in preference order,
  skipping dead shards and shards whose circuit breaker is open, and
  returns the first healthy copy;
* **re-replication** — when a shard dies (killed directly, or its
  container's node fails under the cluster manager), surviving copies
  of every key it held are re-copied to the next live shards on the
  ring until each key is back at ``replicas`` copies. A replacement
  shard container starts empty and is re-synced with the keys the ring
  assigns it.

The coordinator presents the exact :class:`ParameterServer` API
(``put`` / ``get`` / ``get_entry`` / ``put_if_better`` /
``find_pretrained`` / ``fetch_shape_pool`` / ``delete`` ...), so every
caller — CoStudy masters, tuning workers, the serving facade — works
unchanged. ``ShardedParameterServer(shards=1, replicas=1)`` is
behaviourally identical to a single ``ParameterServer``.

Chaos integration: each shard operation passes through a
``paramserver.shard.<name>.<push|pull>`` fault point (so plans can kill
or slow one shard) before the shard's own ``paramserver.push``/``pull``
points fire; injected faults feed the shard's
:class:`~repro.utils.retry.CircuitBreaker` and trigger failover.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import chaos, telemetry
from repro.data.blockstore import BlockStore
from repro.data.store import DataStore
from repro.exceptions import (
    ConfigurationError,
    InjectedFault,
    ParameterNotFoundError,
    ParameterServerError,
    RetryExhaustedError,
)
from repro.paramserver.cache import LRUCache
from repro.paramserver.server import ParameterEntry, ParameterServer, shape_pool
from repro.utils.retry import CircuitBreaker, RetryPolicy

__all__ = ["ShardedParameterServer", "Shard"]

#: exception types that count as "this shard failed, try a replica".
_FAILOVER_ERRORS = (InjectedFault, RetryExhaustedError)


def _ring_hash(text: str) -> int:
    """Stable 64-bit ring position (independent of PYTHONHASHSEED)."""
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "big")


@dataclass
class Shard:
    """One shard: a :class:`ParameterServer` plus liveness bookkeeping."""

    name: str
    server: ParameterServer
    breaker: CircuitBreaker
    alive: bool = True
    #: cluster container currently hosting this shard (None standalone).
    container_id: str | None = None
    #: lifetime death count (kills + node failures).
    deaths: int = field(default=0)


class ShardedParameterServer:
    """Consistent-hashed shards with R-way replication and failover.

    ``cache_bytes`` is the *total* hot-cache budget, split evenly across
    shards — scaling out does not multiply memory. ``retry`` is applied
    around each individual shard operation (shards themselves run
    without a policy), exactly where the single server applies it.

    Checkpoint history blobs are stored through one shared, chunked
    :class:`~repro.data.blockstore.BlockStore` (pass ``block_store=``
    to supply your own): each shard keeps its *own* blob namespace, but
    identical chunks — R replicas of the same version, successive
    near-duplicate checkpoints — are stored once, so ``adopt_history``
    re-replication is physically near-free. A custom ``store_factory``
    overrides this entirely.
    """

    def __init__(
        self,
        shards: int = 4,
        replicas: int = 2,
        cache_bytes: int = 256 * 1024 * 1024,
        retry: RetryPolicy | None = None,
        vnodes: int = 64,
        store_factory: Callable[[str], DataStore] | None = None,
        breaker_factory: Callable[[str], CircuitBreaker] | None = None,
        block_store: BlockStore | None = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.replicas = min(replicas, shards)
        self.retry = retry
        if store_factory is None:
            # One chunk pool under every shard's blob namespace: shard
            # replication and checkpoint versioning dedup down to the
            # chunks that actually differ. Durability across *shard*
            # deaths comes from the coordinator's R-way replication, so
            # the pool itself runs single-node.
            self.block_store = block_store or BlockStore(nodes=1, replicas=1)
            store_factory = lambda name: DataStore(  # noqa: E731
                f"ps-backing-{name}", block_store=self.block_store
            )
        else:
            self.block_store = block_store
        per_shard_cache = max(1, cache_bytes // shards)
        self._shards: list[Shard] = []
        for i in range(shards):
            name = f"ps-{i}"
            store = store_factory(name)
            breaker = (
                breaker_factory(name)
                if breaker_factory is not None
                else CircuitBreaker(
                    name=f"paramserver/{name}", failure_threshold=3, recovery_time=30.0
                )
            )
            self._shards.append(
                Shard(
                    name=name,
                    server=ParameterServer(
                        store=store, cache_bytes=per_shard_cache, name=name
                    ),
                    breaker=breaker,
                )
            )
        self._by_name = {shard.name: shard for shard in self._shards}
        #: the consistent-hash ring: sorted (position, shard index).
        self._ring: list[tuple[int, int]] = sorted(
            (_ring_hash(f"{shard.name}#{v}"), i)
            for i, shard in enumerate(self._shards)
            for v in range(vnodes)
        )
        #: key -> shard names currently holding a full copy, in the
        #: key's preference order (the coordinator's directory, playing
        #: the HDFS namenode role — small metadata that survives any
        #: shard death).
        self._directory: dict[str, list[str]] = {}
        #: key -> number of versions the full history should contain.
        self._expected_versions: dict[str, int] = {}
        #: cluster integration (None when standalone).
        self.manager = None
        self.cluster_job_id: str | None = None
        self.rereplications = 0
        self.keys_lost = 0
        self._publish_live_gauge()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[Shard]:
        """The shard records (read-only use: tests, benchmarks, repr)."""
        return list(self._shards)

    @property
    def cache(self) -> LRUCache:
        """The hot cache — only meaningful with a single shard.

        Exists so ``ShardedParameterServer(shards=1, replicas=1)`` is a
        drop-in for ``ParameterServer`` everywhere, including callers
        that inspect cache statistics.
        """
        if len(self._shards) != 1:
            raise ConfigurationError(
                "a multi-shard server has per-shard caches; iterate .shards"
            )
        return self._shards[0].server.cache

    def cache_stats(self) -> dict[str, float]:
        """Aggregate hit/miss/eviction counts across every shard cache."""
        hits = sum(s.server.cache.hits for s in self._shards)
        misses = sum(s.server.cache.misses for s in self._shards)
        return {
            "hits": hits,
            "misses": misses,
            "evictions": sum(s.server.cache.evictions for s in self._shards),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    def live_shards(self) -> list[Shard]:
        self._refresh_liveness()
        return [shard for shard in self._shards if shard.alive]

    def _preference(self, key: str) -> list[Shard]:
        """Every shard, ordered by the key's walk around the ring."""
        start = bisect_right(self._ring, (_ring_hash(key), len(self._shards)))
        seen: set[int] = set()
        order: list[Shard] = []
        n = len(self._ring)
        for step in range(n):
            _, idx = self._ring[(start + step) % n]
            if idx not in seen:
                seen.add(idx)
                order.append(self._shards[idx])
                if len(order) == len(self._shards):
                    break
        return order

    def _node_of(self, shard: Shard) -> str | None:
        if self.manager is None or shard.container_id is None:
            return None
        container = self.manager.containers.get(shard.container_id)
        return container.node_name if container is not None else None

    def _write_targets(self, key: str) -> list[Shard]:
        """First ``replicas`` live shards in preference order.

        Prefers shards on distinct cluster nodes (rack-awareness) so a
        single node failure cannot destroy every copy; falls back to
        co-located shards only when there aren't enough distinct nodes.
        """
        order = [s for s in self._preference(key) if s.alive]
        targets: list[Shard] = []
        seen_nodes: set[str] = set()
        for shard in order:
            node = self._node_of(shard)
            if node is not None and node in seen_nodes:
                continue
            targets.append(shard)
            if node is not None:
                seen_nodes.add(node)
            if len(targets) == self.replicas:
                return targets
        for shard in order:
            if shard not in targets:
                targets.append(shard)
                if len(targets) == self.replicas:
                    break
        return targets

    # ------------------------------------------------------------------
    # liveness, death and repair
    # ------------------------------------------------------------------

    def _refresh_liveness(self) -> None:
        """Notice cluster-container deaths the manager hasn't replaced yet."""
        if self.manager is None:
            return
        for shard in self._shards:
            if not shard.alive or shard.container_id is None:
                continue
            container = self.manager.containers.get(shard.container_id)
            if container is None or not container.running:
                self._handle_shard_down(shard)

    def kill_shard(self, name: str) -> None:
        """Kill a shard directly (tests/benchmarks; data on it is lost)."""
        shard = self._shard_named(name)
        if shard.alive:
            self._handle_shard_down(shard)

    def revive_shard(self, name: str) -> None:
        """Bring a killed shard back empty and re-sync its ring range."""
        shard = self._shard_named(name)
        if shard.alive:
            return
        shard.alive = True
        self._publish_live_gauge()
        self._rebalance_onto(shard)

    def _shard_named(self, name: str) -> Shard:
        if name not in self._by_name:
            raise ConfigurationError(f"unknown shard {name!r}")
        return self._by_name[name]

    def _handle_shard_down(self, shard: Shard) -> None:
        """Mark a shard dead, drop its (lost) data, restore replication."""
        shard.alive = False
        shard.deaths += 1
        shard.server.wipe()
        telemetry.get_registry().counter(
            "repro_paramserver_shard_deaths_total",
            "Parameter-server shard deaths observed.",
        ).inc(shard=shard.name)
        self._publish_live_gauge()
        for key, holders in list(self._directory.items()):
            if shard.name not in holders:
                continue
            holders.remove(shard.name)
            self._restore_replication(key)

    def _restore_replication(self, key: str) -> None:
        """Re-copy ``key`` until it is back at ``replicas`` live copies."""
        holders = self._directory.get(key, [])
        live_holders = [
            self._by_name[n] for n in holders if self._by_name[n].alive
        ]
        if not live_holders:
            # Every copy died at once: the history is genuinely gone.
            self._directory.pop(key, None)
            self._expected_versions.pop(key, None)
            self.keys_lost += 1
            telemetry.get_registry().counter(
                "repro_paramserver_keys_lost_total",
                "Keys whose every replica died before re-replication.",
            ).inc()
            return
        source = live_holders[0]
        for target in self._write_targets(key):
            if len(live_holders) >= self.replicas:
                break
            if target in live_holders:
                continue
            target.server.adopt_history(source.server, key)
            live_holders.append(target)
            self.rereplications += 1
            telemetry.get_registry().counter(
                "repro_paramserver_rereplications_total",
                "Key histories re-copied to restore the replication factor.",
            ).inc(shard=target.name)
        self._directory[key] = [s.name for s in live_holders]

    def repair(self) -> int:
        """Re-replicate every under-replicated key; return copies made.

        Degraded writes (a replica skipped because its breaker was open
        or its fault point fired) leave keys below the replication
        factor until their next put. Operators — and the chaos
        scenarios — call this once the fault clears to heal everything
        immediately.
        """
        before = self.rereplications
        self._refresh_liveness()
        for key in list(self._directory):
            self._restore_replication(key)
        return self.rereplications - before

    def _rebalance_onto(self, shard: Shard) -> None:
        """Sync a (re)joined empty shard with the keys the ring assigns it."""
        for key in list(self._directory):
            targets = self._write_targets(key)
            holders = self._directory[key]
            if shard in targets and shard.name not in holders:
                source = next(
                    (self._by_name[n] for n in holders if self._by_name[n].alive),
                    None,
                )
                if source is None:
                    continue
                shard.server.adopt_history(source.server, key)
                holders.append(shard.name)
                self.rereplications += 1
                telemetry.get_registry().counter(
                    "repro_paramserver_rereplications_total",
                    "Key histories re-copied to restore the replication factor.",
                ).inc(shard=shard.name)
            # Trim handoff copies the ring no longer assigns, once the
            # key is back above its replication factor.
            if len(holders) > self.replicas:
                target_names = {s.name for s in targets}
                for extra in [n for n in holders if n not in target_names]:
                    if len(holders) <= self.replicas:
                        break
                    holder = self._by_name[extra]
                    if holder.alive and holder.server.has(key):
                        holder.server.delete(key)
                    holders.remove(extra)

    # ------------------------------------------------------------------
    # cluster-manager integration
    # ------------------------------------------------------------------

    def register_with_cluster(self, manager, worker_request=None):
        """Host the shards as PARAMETER-role containers under ``manager``.

        Placement is spread (anti-affinity) so replicas land on distinct
        nodes. Node failures — injected directly or noticed by
        ``detect_failures`` — kill the shards they host; the manager's
        recovery hook hands each replacement container back to this
        coordinator, which re-syncs it from the surviving replicas.
        """
        from repro.cluster.container import ContainerRole
        from repro.cluster.manager import JobKind
        from repro.cluster.node import Resources

        if self.manager is not None:
            raise ConfigurationError("shards are already cluster-registered")
        job = manager.submit_job(
            JobKind.PARAMSERVER,
            name="paramserver",
            num_workers=len(self._shards),
            master_request=Resources(cpus=1, gpus=0, memory_gb=4),
            worker_request=worker_request or Resources(cpus=1, gpus=0, memory_gb=8),
            worker_role=ContainerRole.PARAMETER,
            spread=True,
            queue=False,
        )
        self.manager = manager
        self.cluster_job_id = job.job_id
        hosts = [c for c in job.containers if c.role is ContainerRole.PARAMETER]
        for shard, container in zip(self._shards, hosts):
            shard.container_id = container.container_id
        manager.on_recovery(self._on_container_recovered)
        return job

    def _on_container_recovered(self, container) -> None:
        from repro.cluster.container import ContainerRole

        if container.role is not ContainerRole.PARAMETER:
            return
        if container.job_id != self.cluster_job_id:
            return
        shard = next(
            (s for s in self._shards if s.container_id == container.predecessor),
            None,
        )
        if shard is None:
            return
        if shard.alive:
            # The hook fires synchronously inside fail_node, possibly
            # before any lazy liveness check noticed the death.
            self._handle_shard_down(shard)
        shard.container_id = container.container_id
        shard.alive = True
        self._publish_live_gauge()
        self._rebalance_onto(shard)

    # ------------------------------------------------------------------
    # the ParameterServer API
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        state: dict[str, np.ndarray],
        model: str = "",
        dataset: str = "",
        performance: float = float("nan"),
        public: bool = True,
        **extra,
    ) -> ParameterEntry:
        """Store a new version on every replica; return the entry.

        Replicas that missed earlier versions (a failed-over write, a
        breaker-open skip) first adopt the full history from a healthy
        holder, so version numbers stay globally consistent.
        """
        self._refresh_liveness()
        targets = self._write_targets(key)
        if not targets:
            raise ParameterServerError("no live parameter-server shards")
        expected = self._expected_versions.get(key, 0)
        holders = self._directory.get(key, [])
        source = next(
            (
                self._by_name[n]
                for n in holders
                if self._by_name[n].alive
                and self._by_name[n].server.versions(key) == expected
            ),
            None,
        )
        entry: ParameterEntry | None = None
        written: list[Shard] = []
        last_error: BaseException | None = None
        for shard in targets:
            if not shard.breaker.allow():
                self._count_failover(shard, "push")
                continue
            if source is not None and shard.server.versions(key) != expected:
                shard.server.adopt_history(source.server, key)
            try:
                result = self._shard_call(
                    shard,
                    "push",
                    lambda s=shard: s.server.put(
                        key, state, model=model, dataset=dataset,
                        performance=performance, public=public, **extra,
                    ),
                )
            except _FAILOVER_ERRORS as exc:
                shard.breaker.record_failure()
                self._count_failover(shard, "push")
                last_error = exc
                continue
            shard.breaker.record_success()
            written.append(shard)
            if entry is None:
                entry = result
                if source is None:
                    # First copy of a brand-new (or fully lost) key:
                    # later replicas adopt from here.
                    source = shard
                    expected = result.version - 1
        if entry is None:
            assert last_error is not None
            raise last_error
        merged = [s.name for s in written]
        merged += [
            n for n in holders
            if n not in merged and self._by_name[n].alive
            and self._by_name[n].server.versions(key) == entry.version
        ]
        self._directory[key] = merged
        self._expected_versions[key] = entry.version
        return entry

    def get(self, key: str, version: int | None = None) -> dict[str, np.ndarray]:
        """Fetch parameters, failing over through replicas as needed."""
        return self._read(key, "pull", lambda shard: shard.server.get(key, version))

    def get_entry(self, key: str, version: int | None = None) -> ParameterEntry:
        """Metadata of a stored version (latest unless specified)."""
        return self._read(
            key, "pull", lambda shard: shard.server.get_entry(key, version),
            fire_point=False,
        )

    def _read(self, key: str, op: str, fn: Callable[[Shard], Any],
              fire_point: bool = True) -> Any:
        self._refresh_liveness()
        holders = self._directory.get(key)
        if not holders:
            raise ParameterNotFoundError(key)
        ordered = [
            shard
            for shard in self._preference(key)
            if shard.name in holders and shard.alive
        ]
        last_error: BaseException | None = None
        for shard in ordered:
            if not shard.breaker.allow():
                self._count_failover(shard, op)
                continue
            try:
                if fire_point:
                    result = self._shard_call(shard, op, lambda s=shard: fn(s))
                else:
                    result = fn(shard)
            except _FAILOVER_ERRORS as exc:
                shard.breaker.record_failure()
                self._count_failover(shard, op)
                last_error = exc
                continue
            shard.breaker.record_success()
            return result
        if last_error is not None:
            raise last_error
        raise ParameterServerError(
            f"no live replica can serve {key!r} "
            f"(holders: {', '.join(holders)})"
        )

    def _shard_call(self, shard: Shard, op: str, fn: Callable[[], Any]) -> Any:
        """One coordinator->shard operation: fault point, retry, telemetry."""
        name = f"paramserver.{'push' if op == 'push' else 'pull'}"

        def attempt():
            chaos.fire(f"paramserver.shard.{shard.name}.{op}")
            return fn()

        try:
            if self.retry is not None:
                result = self.retry.call(attempt, name=name)
            else:
                result = attempt()
        except Exception:
            telemetry.get_registry().counter(
                "repro_paramserver_shard_requests_total",
                "Coordinator->shard operations, by shard, op and outcome.",
            ).inc(shard=shard.name, op=op, outcome="error")
            raise
        telemetry.get_registry().counter(
            "repro_paramserver_shard_requests_total",
            "Coordinator->shard operations, by shard, op and outcome.",
        ).inc(shard=shard.name, op=op, outcome="ok")
        return result

    def _count_failover(self, shard: Shard, op: str) -> None:
        telemetry.get_registry().counter(
            "repro_paramserver_failovers_total",
            "Shard operations redirected to a replica, by failed shard.",
        ).inc(shard=shard.name, op=op)

    def _publish_live_gauge(self) -> None:
        telemetry.get_registry().gauge(
            "repro_paramserver_shards_live",
            "Parameter-server shards currently alive.",
        ).set(sum(1 for s in self._shards if s.alive))

    # -- bookkeeping mirrors ------------------------------------------

    def has(self, key: str) -> bool:
        """Whether any version of ``key`` is stored."""
        return key in self._directory

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        return sorted(self._directory)

    def versions(self, key: str) -> int:
        """How many versions of ``key`` exist (0 when absent)."""
        if key not in self._directory:
            return 0
        return self._expected_versions.get(key, 0)

    def delete(self, key: str) -> None:
        """Drop every version of ``key`` from every live replica."""
        holders = self._directory.pop(key, None)
        if holders is None:
            raise ParameterNotFoundError(key)
        self._expected_versions.pop(key, None)
        for name in holders:
            shard = self._by_name[name]
            if shard.alive and shard.server.has(key):
                shard.server.delete(key)

    # -- collaborative-tuning support ---------------------------------

    def put_if_better(
        self,
        key: str,
        state: dict[str, np.ndarray],
        performance: float,
        **meta,
    ) -> bool:
        """Store ``state`` only if it beats the stored performance.

        Same overwrite rule (and NaN guard) as the single server's
        :meth:`ParameterServer.put_if_better`, decided once at the
        coordinator so every replica agrees.
        """
        if self.has(key):
            current = self.get_entry(key).performance
            if np.isnan(performance) and not np.isnan(current):
                return False
            if not np.isnan(current) and performance <= current:
                return False
        self.put(key, state, performance=performance, **meta)
        return True

    def fetch_shape_pool(self, key: str, version: int | None = None) -> dict[tuple[int, ...], list[np.ndarray]]:
        """Group a checkpoint's arrays by shape for shape-matched init."""
        return shape_pool(self.get(key, version))

    def find_pretrained(self, model: str, exclude_dataset: str = "") -> ParameterEntry | None:
        """Best *public* checkpoint of ``model`` from another dataset.

        Scans keys in first-put order (matching the single server's
        insertion-order scan), reading each key's history from the
        healthiest replica.
        """
        self._refresh_liveness()
        best: ParameterEntry | None = None
        for key in self._directory:
            try:
                entries = self._read(
                    key, "pull", lambda shard: shard.server.history(key),
                    fire_point=False,
                )
            except (ParameterServerError, ParameterNotFoundError):
                continue
            for entry in entries:
                if not entry.public or entry.model != model:
                    continue
                if exclude_dataset and entry.dataset == exclude_dataset:
                    continue
                if best is None or (
                    not np.isnan(entry.performance)
                    and (np.isnan(best.performance) or entry.performance > best.performance)
                ):
                    best = entry
        return best

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------

    def audit(self) -> dict[str, Any]:
        """Replication health: lost, under-replicated and divergent keys.

        A key is *divergent* when a live holder's version count differs
        from the expected history length — a stale replica that could
        serve an old checkpoint. The shard-kill chaos scenario asserts
        all three lists are empty after recovery.
        """
        self._refresh_liveness()
        under: list[str] = []
        divergent: list[str] = []
        for key, holders in self._directory.items():
            live = [self._by_name[n] for n in holders if self._by_name[n].alive]
            if len(live) < min(self.replicas, len(self.live_shards())):
                under.append(key)
            expected = self._expected_versions.get(key, 0)
            for shard in live:
                if shard.server.versions(key) != expected:
                    divergent.append(key)
                    break
        return {
            "keys": len(self._directory),
            "keys_lost": self.keys_lost,
            "under_replicated": sorted(under),
            "divergent": sorted(divergent),
            "rereplications": self.rereplications,
            "live_shards": [s.name for s in self._shards if s.alive],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(1 for s in self._shards if s.alive)
        return (
            f"ShardedParameterServer(shards={len(self._shards)}, live={live}, "
            f"replicas={self.replicas}, keys={len(self._directory)})"
        )

"""A byte-budgeted LRU cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro import telemetry
from repro.exceptions import ConfigurationError

__all__ = ["LRUCache"]


class LRUCache:
    """LRU cache keyed by string with a total byte budget.

    ``size_of`` computes the cost of each value; entries are evicted
    least-recently-used-first when the budget is exceeded. A single
    value larger than the whole budget is simply not cached.

    When ``name`` is given, the cache publishes its hit/miss/eviction
    counts, byte usage and hit ratio to the telemetry registry under a
    ``cache=<name>`` label.
    """

    def __init__(self, capacity_bytes: int, size_of: Callable[[Any], int],
                 name: str | None = None):
        if capacity_bytes < 0:
            raise ConfigurationError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._size_of = size_of
        self.name = name
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _publish(self) -> None:
        """Mirror the cache's current statistics into the registry."""
        if self.name is None:
            return
        registry = telemetry.get_registry()
        registry.gauge(
            "repro_cache_used_bytes", "Bytes held by a named cache."
        ).set(self._used, cache=self.name)
        registry.gauge(
            "repro_cache_hit_ratio", "Lifetime hit ratio of a named cache."
        ).set(self.hit_rate, cache=self.name)

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """Return the cached value or ``None``; updates recency and stats."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self.name is not None:
                telemetry.get_registry().counter(
                    "repro_cache_misses_total", "Named-cache lookup misses."
                ).inc(cache=self.name)
                self._publish()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.name is not None:
            telemetry.get_registry().counter(
                "repro_cache_hits_total", "Named-cache lookup hits."
            ).inc(cache=self.name)
            self._publish()
        return entry[0]

    def put(self, key: str, value: Any) -> None:
        """Insert/overwrite ``key`` and evict as needed."""
        size = int(self._size_of(value))
        if key in self._entries:
            self._used -= self._entries.pop(key)[1]
        if size > self.capacity_bytes:
            # The overwrite above may have freed bytes; the gauges must
            # reflect that even though the new value is not cached.
            self._publish()
            return
        self._entries[key] = (value, size)
        self._used += size
        evicted = 0
        while self._used > self.capacity_bytes and self._entries:
            _evicted_key, (_value, evicted_size) = self._entries.popitem(last=False)
            self._used -= evicted_size
            self.evictions += 1
            evicted += 1
        if self.name is not None:
            if evicted:
                telemetry.get_registry().counter(
                    "repro_cache_evictions_total", "Named-cache LRU evictions."
                ).inc(evicted, cache=self.name)
            self._publish()

    def invalidate(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry[1]
            self._publish()

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0
        self._publish()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

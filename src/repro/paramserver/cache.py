"""A byte-budgeted LRU cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.exceptions import ConfigurationError

__all__ = ["LRUCache"]


class LRUCache:
    """LRU cache keyed by string with a total byte budget.

    ``size_of`` computes the cost of each value; entries are evicted
    least-recently-used-first when the budget is exceeded. A single
    value larger than the whole budget is simply not cached.
    """

    def __init__(self, capacity_bytes: int, size_of: Callable[[Any], int]):
        if capacity_bytes < 0:
            raise ConfigurationError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._size_of = size_of
        self._entries: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any | None:
        """Return the cached value or ``None``; updates recency and stats."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: str, value: Any) -> None:
        """Insert/overwrite ``key`` and evict as needed."""
        size = int(self._size_of(value))
        if key in self._entries:
            self._used -= self._entries.pop(key)[1]
        if size > self.capacity_bytes:
            return
        self._entries[key] = (value, size)
        self._used += size
        while self._used > self.capacity_bytes and self._entries:
            _evicted_key, (_value, evicted_size) = self._entries.popitem(last=False)
            self._used -= evicted_size
            self.evictions += 1

    def invalidate(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._used -= entry[1]

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

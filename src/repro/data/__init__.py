"""Data substrate: storage namespace, synthetic datasets, preprocessing.

Stands in for the paper's HDFS data layer and for CIFAR-10/ImageNet.
Datasets are procedurally generated (class-conditional structured
textures) so that ConvNets built on :mod:`repro.tensor` have a real
signal to learn, and the preprocessing module implements the exact
pipeline Section 7.1 describes (per-channel standardisation, 4-pixel
padding, random 32x32 crop, random horizontal flip).
"""

from repro.data.blockstore import BlockStore, DataNode, chunk_digest, split_chunks
from repro.data.datasets import ImageDataset, make_image_classification, make_sentiment_dataset
from repro.data.fs import FileNamespace, Manifest, PendingWrite
from repro.data.loader import BatchLoader
from repro.data.preprocess import (
    Compose,
    PadCrop,
    RandomFlip,
    RandomRotation,
    Standardize,
    ZCAWhitening,
    standard_cifar_pipeline,
)
from repro.data.store import DataStore, DatasetHandle

__all__ = [
    "BlockStore",
    "DataNode",
    "FileNamespace",
    "Manifest",
    "PendingWrite",
    "chunk_digest",
    "split_chunks",
    "DataStore",
    "DatasetHandle",
    "ImageDataset",
    "make_image_classification",
    "make_sentiment_dataset",
    "BatchLoader",
    "Compose",
    "Standardize",
    "PadCrop",
    "RandomFlip",
    "RandomRotation",
    "ZCAWhitening",
    "standard_cifar_pipeline",
]

from repro.data.detection import (  # noqa: E402
    DetectionDataset,
    iou,
    make_object_detection,
    mean_iou,
)

__all__ += ["DetectionDataset", "make_object_detection", "iou", "mean_iou"]

"""Chunked, content-addressable, replicated block storage.

The datanode half of the HDFS-shaped store (the namenode half —
paths, manifests, versions — lives in :mod:`repro.data.fs`). Files are
split into fixed-size chunks addressed by their sha256 digest, so

* **dedup is structural**: two files (or two versions, or two
  parameter-server replicas) that share bytes share chunks — the
  near-duplicate checkpoints a tuning study writes collapse to the
  few chunks that actually changed;
* **replication is per chunk**: every chunk is placed on ``replicas``
  distinct :class:`DataNode`\\ s chosen by rendezvous hashing
  (preferring distinct cluster nodes when the store is
  cluster-registered), so one machine failure cannot destroy any
  chunk;
* **failure handling mirrors the sharded parameter server**: reads
  fail over through the chunk's holders behind per-node circuit
  breakers, a dead node's chunks are re-replicated from the surviving
  copies, and ``repair()``/``audit()`` heal and report replication
  health;
* **trash reconciliation follows HMDFS**: a datanode death does not
  destroy its disk. While it is down, deletions that would have
  reached it are queued in a per-node *trash* set; when the node
  rejoins, trashed and over-replicated chunks are removed from its
  disk and still-referenced survivors are re-admitted to the
  directory (which can resurrect chunks whose every live copy died).

Chaos integration: every datanode operation passes through
``data.store.node.<name>.<put|get>`` fault points (plus the aggregate
``data.store.put``/``data.store.get`` points), so plans can kill or
slow a single datanode; injected faults feed the node's
:class:`~repro.utils.retry.CircuitBreaker` and trigger failover or
re-placement exactly as real disk errors would.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro import chaos, telemetry
from repro.exceptions import (
    ChunkLostError,
    ConfigurationError,
    InjectedFault,
    RetryExhaustedError,
    StorageError,
)
from repro.utils.retry import CircuitBreaker

__all__ = ["BlockStore", "DataNode", "chunk_digest", "split_chunks", "DEFAULT_CHUNK_SIZE"]

#: default chunk size in bytes. Small enough that a ~70KB checkpoint
#: spans several chunks (so partial updates dedup), large enough that
#: digest overhead stays negligible.
DEFAULT_CHUNK_SIZE = 64 * 1024

#: exception types that count as "this datanode failed, try another".
_FAILOVER_ERRORS = (InjectedFault, RetryExhaustedError)


def chunk_digest(data: bytes) -> str:
    """Content address of one chunk: its sha256 hex digest."""
    return hashlib.sha256(data).hexdigest()


def split_chunks(data: bytes, chunk_size: int) -> list[bytes]:
    """Split ``data`` into fixed-size chunks (the last one may be short).

    Empty input yields an empty list — a zero-length file is a manifest
    with no chunks, not a chunk of no bytes.
    """
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]


def _rendezvous_score(digest: str, node_name: str) -> int:
    """Stable highest-random-weight score (independent of PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.md5(f"{digest}|{node_name}".encode("utf-8")).digest()[:8], "big"
    )


@dataclass
class DataNode:
    """One storage daemon: a chunk disk plus liveness bookkeeping.

    ``chunks`` is the node's disk — it survives :meth:`BlockStore.kill_node`
    (process death leaves the disk behind) and is either reconciled on
    rejoin or discarded when the node's container restarts on a
    different machine.
    """

    name: str
    breaker: CircuitBreaker
    alive: bool = True
    #: digest -> chunk bytes (the disk).
    chunks: dict[str, bytes] = field(default_factory=dict)
    #: cluster container currently hosting this datanode (None standalone).
    container_id: str | None = None
    #: cluster node that container runs on (tracks disk locality).
    node_name: str | None = None
    #: lifetime death count (kills + node failures).
    deaths: int = 0

    @property
    def stored_bytes(self) -> int:
        """Bytes currently on this node's disk."""
        return sum(len(chunk) for chunk in self.chunks.values())


class BlockStore:
    """Fixed-size chunks, sha256 addressing, R-way replica placement.

    The store is the *chunk* layer only: it knows digests, holders and
    reference counts, never paths (see :class:`repro.data.fs.FileNamespace`
    for the namenode role). ``replicas`` is clamped to the node count.
    Reference counts are owned by the namespaces committing manifests:
    :meth:`put` stores bytes, :meth:`incref`/:meth:`decref` pin and
    release them, and a chunk's bytes are deleted everywhere when its
    last reference drops.
    """

    def __init__(
        self,
        nodes: int = 3,
        replicas: int = 2,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        breaker_factory=None,
    ):
        if nodes < 1:
            raise ConfigurationError(f"nodes must be >= 1, got {nodes}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.replicas = min(replicas, nodes)
        self.chunk_size = chunk_size
        self._nodes: list[DataNode] = []
        for i in range(nodes):
            name = f"dn-{i}"
            breaker = (
                breaker_factory(name)
                if breaker_factory is not None
                else CircuitBreaker(
                    name=f"blockstore/{name}", failure_threshold=3, recovery_time=30.0
                )
            )
            self._nodes.append(DataNode(name=name, breaker=breaker))
        self._by_name = {node.name: node for node in self._nodes}
        #: digest -> live holder names (the namenode's block map).
        self._directory: dict[str, list[str]] = {}
        #: digest -> chunk length in bytes.
        self._sizes: dict[str, int] = {}
        #: digest -> number of committed manifest references.
        self._refcounts: dict[str, int] = {}
        #: dead node -> digests to delete from its disk when it rejoins.
        self._trash: dict[str, set[str]] = {}
        #: digests whose every live copy is gone (until rejoin restores them).
        self._lost: set[str] = set()
        #: cluster integration (None when standalone).
        self.manager = None
        self.cluster_job_id: str | None = None
        #: last heartbeat per datanode, on the injectable telemetry clock.
        self.last_heartbeat: dict[str, float] = {
            node.name: telemetry.get_clock().now() for node in self._nodes
        }
        self.rereplications = 0
        self.dedup_hits = 0
        self.trash_reconciled = 0
        self._publish_gauges()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[DataNode]:
        """The datanode records (read-only use: tests, benchmarks, repr)."""
        return list(self._nodes)

    def node(self, name: str) -> DataNode:
        """Look a datanode up by name."""
        if name not in self._by_name:
            raise ConfigurationError(f"unknown datanode {name!r}")
        return self._by_name[name]

    def live_nodes(self) -> list[DataNode]:
        """Datanodes currently alive (refreshing cluster liveness first)."""
        self._refresh_liveness()
        return [node for node in self._nodes if node.alive]

    def _preference(self, digest: str) -> list[DataNode]:
        """Every datanode, ordered by the chunk's rendezvous-hash weight."""
        return sorted(
            self._nodes,
            key=lambda n: (-_rendezvous_score(digest, n.name), n.name),
        )

    def _host_of(self, node: DataNode) -> str | None:
        if self.manager is None or node.container_id is None:
            return None
        container = self.manager.containers.get(node.container_id)
        return container.node_name if container is not None else None

    def _targets(self, digest: str) -> list[DataNode]:
        """First ``replicas`` live datanodes in preference order.

        Prefers datanodes on distinct cluster nodes (rack-awareness) so
        one machine failure cannot take every copy; falls back to
        co-located datanodes only when there aren't enough hosts.
        """
        order = [n for n in self._preference(digest) if n.alive]
        targets: list[DataNode] = []
        seen_hosts: set[str] = set()
        for node in order:
            host = self._host_of(node)
            if host is not None and host in seen_hosts:
                continue
            targets.append(node)
            if host is not None:
                seen_hosts.add(host)
            if len(targets) == self.replicas:
                return targets
        for node in order:
            if node not in targets:
                targets.append(node)
                if len(targets) == self.replicas:
                    break
        return targets

    def _needed(self) -> int:
        """The replication factor achievable right now."""
        return min(self.replicas, sum(1 for n in self._nodes if n.alive))

    # ------------------------------------------------------------------
    # chunk I/O
    # ------------------------------------------------------------------

    def put(self, data: bytes, on_chunk=None) -> list[str]:
        """Chunk ``data`` and store every chunk; return its digest list.

        Identical chunks (within this call or against anything already
        stored) are stored once and counted as dedup hits. ``on_chunk``
        — called as ``on_chunk(index, digest)`` after each chunk lands —
        lets chaos scenarios kill a node *mid-write* deterministically.
        Bytes are stored unreferenced until a namespace commits a
        manifest and calls :meth:`incref`.
        """
        self._refresh_liveness()
        digests: list[str] = []
        for index, chunk in enumerate(split_chunks(data, self.chunk_size)):
            digest = chunk_digest(chunk)
            if digest in self._directory and digest not in self._lost:
                self.dedup_hits += 1
                telemetry.get_registry().counter(
                    "repro_blockstore_dedup_hits_total",
                    "Chunk puts answered by an already-stored identical chunk.",
                ).inc()
            else:
                self._store_chunk(digest, chunk)
            digests.append(digest)
            if on_chunk is not None:
                on_chunk(index, digest)
        self._publish_gauges()
        return digests

    def _store_chunk(self, digest: str, data: bytes) -> None:
        """Place one chunk on ``replicas`` datanodes (at least one)."""
        placed: list[str] = []
        last_error: BaseException | None = None
        for node in self._targets(digest):
            if not node.breaker.allow():
                self._count_failover(node, "put")
                continue
            try:
                self._node_call(node, "put")
            except _FAILOVER_ERRORS as exc:
                node.breaker.record_failure()
                self._count_failover(node, "put")
                last_error = exc
                continue
            node.breaker.record_success()
            node.chunks[digest] = data
            placed.append(node.name)
        if not placed:
            if last_error is not None:
                raise last_error
            raise StorageError(f"no live datanode accepted chunk {digest[:12]}…")
        self._directory[digest] = placed
        self._sizes[digest] = len(data)
        self._refcounts.setdefault(digest, 0)
        self._lost.discard(digest)
        telemetry.get_registry().counter(
            "repro_blockstore_chunk_writes_total", "Distinct chunks written."
        ).inc()

    def get_chunk(self, digest: str) -> bytes:
        """Fetch one chunk, failing over through its holders as needed."""
        self._refresh_liveness()
        holders = self._directory.get(digest)
        if holders is None:
            raise ChunkLostError(f"unknown chunk {digest[:12]}…")
        ordered = [
            node
            for node in self._preference(digest)
            if node.name in holders and node.alive
        ]
        last_error: BaseException | None = None
        for node in ordered:
            if not node.breaker.allow():
                self._count_failover(node, "get")
                continue
            try:
                self._node_call(node, "get")
            except _FAILOVER_ERRORS as exc:
                node.breaker.record_failure()
                self._count_failover(node, "get")
                last_error = exc
                continue
            node.breaker.record_success()
            return node.chunks[digest]
        if last_error is not None:
            raise last_error
        raise ChunkLostError(
            f"chunk {digest[:12]}… has no live replica "
            f"(holders: {', '.join(holders) or 'none'})"
        )

    def has_chunk(self, digest: str) -> bool:
        """Whether the chunk has at least one live copy."""
        holders = self._directory.get(digest)
        if not holders:
            return False
        return any(self._by_name[name].alive for name in holders)

    def ensure(self, digests: list[str], data: bytes) -> int:
        """Re-store any chunk of ``data`` that lost every live copy.

        The writer still holds the bytes, so a node death *during* a
        write costs nothing: commit calls this before publishing the
        manifest, closing the mid-write window. Returns the number of
        chunks re-stored.
        """
        self._refresh_liveness()
        chunks = split_chunks(data, self.chunk_size)
        if len(chunks) != len(digests):
            raise StorageError("digest list does not match the data being ensured")
        healed = 0
        for digest, chunk in zip(digests, chunks):
            if not self.has_chunk(digest):
                refs = self._refcounts.get(digest, 0)
                self._store_chunk(digest, chunk)
                self._refcounts[digest] = refs
                healed += 1
        if healed:
            self._publish_gauges()
        return healed

    def _node_call(self, node: DataNode, op: str) -> None:
        """One store->datanode operation: fault points plus telemetry."""
        try:
            chaos.fire(f"data.store.{op}")
            chaos.fire(f"data.store.node.{node.name}.{op}")
        except Exception:
            telemetry.get_registry().counter(
                "repro_blockstore_requests_total",
                "Store->datanode chunk operations, by node, op and outcome.",
            ).inc(node=node.name, op=op, outcome="error")
            raise
        telemetry.get_registry().counter(
            "repro_blockstore_requests_total",
            "Store->datanode chunk operations, by node, op and outcome.",
        ).inc(node=node.name, op=op, outcome="ok")

    def _count_failover(self, node: DataNode, op: str) -> None:
        telemetry.get_registry().counter(
            "repro_blockstore_failovers_total",
            "Chunk operations redirected to another holder, by failed node.",
        ).inc(node=node.name, op=op)

    # ------------------------------------------------------------------
    # reference counting (namespace-driven)
    # ------------------------------------------------------------------

    def incref(self, digests: list[str]) -> None:
        """Pin chunks referenced by a newly committed manifest."""
        for digest in digests:
            if digest not in self._directory:
                raise ChunkLostError(f"cannot reference unknown chunk {digest[:12]}…")
            self._refcounts[digest] = self._refcounts.get(digest, 0) + 1
        self._publish_gauges()

    def decref(self, digests: list[str]) -> None:
        """Release manifest references; delete chunks that reach zero.

        Deleting from a *dead* node's disk is impossible, so those
        deletions are queued in the node's trash set and applied when
        it rejoins (the HMDFS trash pass).
        """
        for digest in digests:
            if digest not in self._refcounts:
                continue
            self._refcounts[digest] -= 1
            if self._refcounts[digest] > 0:
                continue
            for node in self._nodes:
                if digest not in node.chunks:
                    continue
                if node.alive:
                    del node.chunks[digest]
                else:
                    self._trash.setdefault(node.name, set()).add(digest)
            self._directory.pop(digest, None)
            self._sizes.pop(digest, None)
            self._refcounts.pop(digest, None)
            self._lost.discard(digest)
        self._publish_gauges()

    # ------------------------------------------------------------------
    # liveness, death, rejoin
    # ------------------------------------------------------------------

    def heartbeat(self, name: str) -> bool:
        """Record a datanode liveness heartbeat; returns whether it is alive."""
        node = self.node(name)
        self.last_heartbeat[name] = telemetry.get_clock().now()
        telemetry.get_registry().counter(
            "repro_blockstore_heartbeats_total", "Datanode heartbeats received."
        ).inc(node=name)
        return node.alive

    def detect_failures(self, timeout: float) -> list[str]:
        """Kill every alive datanode silent for longer than ``timeout``.

        The push-based failure detector mirroring
        :meth:`~repro.cluster.manager.ClusterManager.detect_failures`:
        silence on the injectable telemetry clock is treated as a node
        death, triggering re-replication. Returns newly dead node names.
        """
        now = telemetry.get_clock().now()
        stale = [
            node.name
            for node in self._nodes
            if node.alive and now - self.last_heartbeat.get(node.name, now) > timeout
        ]
        for name in stale:
            self.kill_node(name)
        return stale

    def kill_node(self, name: str) -> None:
        """Kill a datanode (its disk survives for a later rejoin)."""
        node = self.node(name)
        if node.alive:
            self._handle_node_down(node)

    def _handle_node_down(self, node: DataNode) -> None:
        """Mark a node dead and restore replication from surviving copies."""
        node.alive = False
        node.deaths += 1
        self._trash.setdefault(node.name, set())
        telemetry.get_registry().counter(
            "repro_blockstore_node_deaths_total", "Datanode deaths observed."
        ).inc(node=node.name)
        for digest in sorted(self._directory):
            holders = self._directory[digest]
            if node.name not in holders:
                continue
            holders.remove(node.name)
            if holders:
                self._restore_replication(digest)
            else:
                self._lost.add(digest)
                telemetry.get_registry().counter(
                    "repro_blockstore_chunks_lost_total",
                    "Chunks whose every live copy died before re-replication.",
                ).inc()
        self._publish_gauges()

    def _restore_replication(self, digest: str) -> int:
        """Re-copy ``digest`` until it is back at ``replicas`` live copies."""
        holders = self._directory.get(digest)
        if not holders:
            return 0
        source = self._by_name[holders[0]]
        copied = 0
        for target in self._targets(digest):
            if len(holders) >= self._needed():
                break
            if target.name in holders:
                continue
            target.chunks[digest] = source.chunks[digest]
            holders.append(target.name)
            copied += 1
            self.rereplications += 1
            telemetry.get_registry().counter(
                "repro_blockstore_rereplications_total",
                "Chunks re-copied to restore the replication factor.",
            ).inc(node=target.name)
        return copied

    def rejoin_node(self, name: str) -> int:
        """Bring a dead datanode back with its disk and reconcile it.

        The HMDFS trash pass: chunks deleted (or re-replicated past the
        factor) while the node was down are removed from its disk;
        still-referenced survivors are re-admitted to the directory —
        which resurrects any chunk whose every live copy had died.
        Returns the number of chunks deleted from the rejoining disk.
        """
        node = self.node(name)
        if node.alive:
            return 0
        node.alive = True
        self.last_heartbeat[name] = telemetry.get_clock().now()
        removed = self._reconcile(node)
        self._publish_gauges()
        return removed

    def _reconcile(self, node: DataNode) -> int:
        """Apply the trash pass to a rejoining node's preserved disk."""
        trash = self._trash.pop(node.name, set())
        removed = 0
        registry = telemetry.get_registry()
        for digest in sorted(node.chunks):
            holders = self._directory.get(digest)
            stale = (
                digest in trash
                or holders is None
                or (node.name not in holders and len(holders) >= self._needed())
            )
            if stale:
                del node.chunks[digest]
                removed += 1
                self.trash_reconciled += 1
                registry.counter(
                    "repro_blockstore_trash_reconciled_total",
                    "Stale chunks deleted from a rejoining datanode's disk.",
                ).inc(node=node.name)
                continue
            if node.name not in holders:
                holders.append(node.name)
                if digest in self._lost:
                    self._lost.discard(digest)
                    registry.counter(
                        "repro_blockstore_chunks_restored_total",
                        "Lost chunks resurrected from a rejoining disk.",
                    ).inc(node=node.name)
        return removed

    def repair(self) -> int:
        """Re-replicate every under-replicated chunk; return copies made.

        Writes that ran degraded (an open breaker, an injected fault, a
        mid-write death) leave chunks below the replication factor.
        Operators — and the chaos scenarios — call this once the fault
        clears to heal everything immediately.
        """
        self._refresh_liveness()
        before = self.rereplications
        for digest in sorted(self._directory):
            if len(self._directory[digest]) < self._needed():
                self._restore_replication(digest)
        self._publish_gauges()
        return self.rereplications - before

    # ------------------------------------------------------------------
    # cluster-manager integration
    # ------------------------------------------------------------------

    def register_with_cluster(self, manager, worker_request=None):
        """Host the datanodes as DATA-role containers under ``manager``.

        Placement is spread (anti-affinity) so chunk replicas land on
        distinct machines. Node failures — injected directly or noticed
        by ``detect_failures`` — kill the datanodes they host; the
        manager's recovery hook hands each replacement container back:
        a replacement on the *same* machine rejoins with its disk and
        runs the trash pass, a replacement elsewhere starts with an
        empty disk and is re-synced from the surviving replicas.
        """
        from repro.cluster.container import ContainerRole
        from repro.cluster.manager import JobKind
        from repro.cluster.node import Resources

        if self.manager is not None:
            raise ConfigurationError("datanodes are already cluster-registered")
        job = manager.submit_job(
            JobKind.DATASTORE,
            name="blockstore",
            num_workers=len(self._nodes),
            master_request=Resources(cpus=1, gpus=0, memory_gb=4),
            worker_request=worker_request or Resources(cpus=1, gpus=0, memory_gb=8),
            worker_role=ContainerRole.DATA,
            spread=True,
            queue=False,
        )
        self.manager = manager
        self.cluster_job_id = job.job_id
        hosts = [c for c in job.containers if c.role is ContainerRole.DATA]
        for node, container in zip(self._nodes, hosts):
            node.container_id = container.container_id
            node.node_name = container.node_name
        manager.on_recovery(self._on_container_recovered)
        return job

    def _refresh_liveness(self) -> None:
        """Notice cluster-container deaths the manager hasn't replaced yet."""
        if self.manager is None:
            return
        for node in self._nodes:
            if not node.alive or node.container_id is None:
                continue
            container = self.manager.containers.get(node.container_id)
            if container is None or not container.running:
                self._handle_node_down(node)

    def _on_container_recovered(self, container) -> None:
        from repro.cluster.container import ContainerRole

        if container.role is not ContainerRole.DATA:
            return
        if container.job_id != self.cluster_job_id:
            return
        node = next(
            (n for n in self._nodes if n.container_id == container.predecessor),
            None,
        )
        if node is None:
            return
        if node.alive:
            # The hook fires synchronously inside fail_node, possibly
            # before any lazy liveness check noticed the death.
            self._handle_node_down(node)
        same_host = container.node_name == node.node_name
        node.container_id = container.container_id
        node.node_name = container.node_name
        node.alive = True
        self.last_heartbeat[node.name] = telemetry.get_clock().now()
        if same_host:
            # The machine came back: the disk survived — trash pass.
            self._reconcile(node)
        else:
            # Restarted elsewhere: the old disk is orphaned — start
            # empty and re-sync from the surviving replicas.
            node.chunks.clear()
            self._trash.pop(node.name, None)
            self._rebalance_onto(node)
        self._publish_gauges()

    def _rebalance_onto(self, node: DataNode) -> None:
        """Re-sync an empty (re)joined datanode with its assigned chunks."""
        for digest in sorted(self._directory):
            holders = self._directory[digest]
            if node.name in holders or len(holders) >= self._needed():
                continue
            if node in self._targets(digest):
                self._restore_replication(digest)

    # ------------------------------------------------------------------
    # auditing
    # ------------------------------------------------------------------

    def audit(self) -> dict:
        """Replication health: lost, under-replicated chunks, dedup ratio.

        ``logical_bytes`` counts every manifest reference, ``unique_bytes``
        each stored chunk once, ``replicated_bytes`` every live copy —
        so ``dedup_ratio = logical / unique`` measures what content
        addressing saved. The store-kill chaos scenario asserts ``lost``
        and ``under_replicated`` are empty after repair.
        """
        self._refresh_liveness()
        needed = self._needed()
        under = sorted(
            digest
            for digest, holders in self._directory.items()
            if 0 < len(holders) < needed
        )
        unique = sum(self._sizes.values())
        logical = sum(
            self._sizes[digest] * self._refcounts.get(digest, 0)
            for digest in self._directory
        )
        replicated = sum(
            self._sizes[digest] * len(holders)
            for digest, holders in self._directory.items()
        )
        return {
            "chunks": len(self._directory),
            "lost": sorted(self._lost),
            "under_replicated": under,
            "unique_bytes": unique,
            "logical_bytes": logical,
            "replicated_bytes": replicated,
            "dedup_ratio": round(logical / unique, 4) if unique else 1.0,
            "dedup_hits": self.dedup_hits,
            "rereplications": self.rereplications,
            "trash_reconciled": self.trash_reconciled,
            "trash_pending": {
                name: len(digests)
                for name, digests in sorted(self._trash.items())
                if digests
            },
            "live_nodes": [n.name for n in self._nodes if n.alive],
        }

    def _publish_gauges(self) -> None:
        registry = telemetry.get_registry()
        registry.gauge(
            "repro_blockstore_nodes_live", "Datanodes currently alive."
        ).set(sum(1 for n in self._nodes if n.alive))
        registry.gauge(
            "repro_blockstore_chunks", "Distinct chunks currently stored."
        ).set(len(self._directory))
        unique = sum(self._sizes.values())
        logical = sum(
            self._sizes[digest] * self._refcounts.get(digest, 0)
            for digest in self._directory
        )
        registry.gauge(
            "repro_blockstore_bytes", "Stored bytes, by accounting kind."
        ).set(unique, kind="unique")
        registry.gauge(
            "repro_blockstore_bytes", "Stored bytes, by accounting kind."
        ).set(logical, kind="logical")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = sum(1 for n in self._nodes if n.alive)
        return (
            f"BlockStore(nodes={len(self._nodes)}, live={live}, "
            f"replicas={self.replicas}, chunks={len(self._directory)})"
        )

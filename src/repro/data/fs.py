"""Namenode-style file namespace over the chunked block store.

:class:`FileNamespace` maps ``path -> [chunk digests]`` through
versioned, immutable :class:`Manifest` records, playing the namenode
role to :class:`repro.data.blockstore.BlockStore`'s datanodes: the
namespace owns *names* and *versions*, the block store owns *bytes*.

Two semantics the regression tests pin down live here:

* **last-writer-wins commits** — a write is two phases,
  :meth:`FileNamespace.begin_write` (chunks uploaded, nothing visible)
  then :meth:`FileNamespace.commit` (chunks healed via
  ``BlockStore.ensure``, then the manifest appended atomically). Two
  concurrent writers to one path each commit a *complete* manifest;
  whichever commits last wins, and no reader ever sees an interleaved
  chunk list.
* **no partial reads** — :meth:`FileNamespace.read_chunks` re-checks
  the manifest before serving each chunk; if the path (or the version
  being read) was deleted mid-read it raises
  :class:`~repro.exceptions.NotFoundError` instead of returning a
  truncated blob.

Overwrites never destroy history: every commit appends a new version
and old manifests stay reachable through
:meth:`FileNamespace.versions` until the path is deleted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.data.blockstore import BlockStore
from repro.exceptions import NotFoundError, StorageError

__all__ = ["FileNamespace", "Manifest", "PendingWrite"]


@dataclass(frozen=True)
class Manifest:
    """One immutable version of one path: its ordered chunk digests."""

    path: str
    version: int
    length: int
    chunk_size: int
    digests: tuple[str, ...]
    writer: str = ""


@dataclass(frozen=True)
class PendingWrite:
    """A write whose chunks are uploaded but whose manifest isn't committed.

    Holds the full payload so :meth:`FileNamespace.commit` can re-store
    any chunk that lost every replica between upload and commit — the
    zero-bytes-lost guarantee under mid-write node kills.
    """

    path: str
    data: bytes
    digests: tuple[str, ...]
    writer: str = ""


class FileNamespace:
    """Versioned ``path -> manifest`` namespace over a :class:`BlockStore`.

    Multiple namespaces may share one block store (the sharded
    parameter server gives each shard its own namespace over a shared
    chunk pool): names are isolated, identical bytes dedup across all
    of them. Reference counts on chunks are maintained here — commit
    increfs, delete decrefs — so the store can garbage-collect bytes
    the moment no manifest anywhere references them.
    """

    def __init__(self, store: BlockStore, name: str = "fs"):
        self.store = store
        self.name = name
        #: path -> list of manifests, oldest first; last one is current.
        self._manifests: dict[str, list[Manifest]] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def begin_write(self, path: str, data: bytes, writer: str = "", on_chunk=None):
        """Phase one: upload chunks; the path is untouched until commit."""
        if not path:
            raise StorageError("path must be non-empty")
        data = bytes(data)
        digests = self.store.put(data, on_chunk=on_chunk)
        return PendingWrite(path=path, data=data, digests=tuple(digests), writer=writer)

    def commit(self, pending: PendingWrite) -> Manifest:
        """Phase two: heal any replica lost mid-write, then publish.

        The manifest append is the commit point — a single atomic
        mutation, so concurrent writers serialize into last-writer-wins
        whole manifests rather than interleaved chunk lists.
        """
        healed = self.store.ensure(list(pending.digests), pending.data)
        if healed:
            telemetry.get_registry().counter(
                "repro_fs_commit_heals_total",
                "Chunks re-stored at commit after losing every replica mid-write.",
            ).inc(namespace=self.name)
        history = self._manifests.setdefault(pending.path, [])
        manifest = Manifest(
            path=pending.path,
            version=len(history) + 1,
            length=len(pending.data),
            chunk_size=self.store.chunk_size,
            digests=pending.digests,
            writer=pending.writer,
        )
        self.store.incref(list(manifest.digests))
        history.append(manifest)
        telemetry.get_registry().counter(
            "repro_fs_commits_total", "Manifest versions committed."
        ).inc(namespace=self.name)
        return manifest

    def write(self, path: str, data: bytes, writer: str = "", on_chunk=None) -> Manifest:
        """begin_write + commit in one call (the common, uncontended case)."""
        return self.commit(self.begin_write(path, data, writer=writer, on_chunk=on_chunk))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def stat(self, path: str, version: int | None = None) -> Manifest:
        """The manifest for ``path`` (current version by default)."""
        history = self._manifests.get(path)
        if not history:
            raise NotFoundError(f"no such path: {path!r}")
        if version is None:
            return history[-1]
        for manifest in history:
            if manifest.version == version:
                return manifest
        raise NotFoundError(f"no version {version} of path {path!r}")

    def exists(self, path: str) -> bool:
        """Whether ``path`` currently resolves to a manifest."""
        return bool(self._manifests.get(path))

    def versions(self, path: str) -> list[Manifest]:
        """Every retained manifest of ``path``, oldest first."""
        history = self._manifests.get(path)
        if not history:
            raise NotFoundError(f"no such path: {path!r}")
        return list(history)

    def read_chunks(self, path: str, version: int | None = None):
        """Yield the file's chunks, re-validating the manifest each step.

        If the path or the version being read is deleted mid-iteration,
        raises :class:`NotFoundError` — a reader never silently gets a
        truncated blob.
        """
        manifest = self.stat(path, version)
        for digest in manifest.digests:
            current = self._manifests.get(path)
            if not current or manifest not in current:
                raise NotFoundError(
                    f"path {path!r} version {manifest.version} deleted mid-read"
                )
            yield self.store.get_chunk(digest)

    def read(self, path: str, version: int | None = None) -> bytes:
        """The file's full contents (current version by default)."""
        return b"".join(self.read_chunks(path, version))

    # ------------------------------------------------------------------
    # namespace management
    # ------------------------------------------------------------------

    def delete(self, path: str) -> int:
        """Drop every version of ``path``; returns versions removed.

        Dereferences all their chunks — bytes unreferenced by any other
        manifest are garbage-collected by the store (or trashed for
        currently-dead datanodes).
        """
        history = self._manifests.pop(path, None)
        if not history:
            raise NotFoundError(f"no such path: {path!r}")
        for manifest in history:
            self.store.decref(list(manifest.digests))
        return len(history)

    def list_paths(self, prefix: str = "") -> list[str]:
        """Paths with at least one version, filtered by prefix, sorted."""
        return sorted(p for p in self._manifests if p.startswith(prefix))

    def logical_bytes(self) -> int:
        """Bytes addressed by every retained manifest (before dedup)."""
        return sum(
            manifest.length
            for history in self._manifests.values()
            for manifest in history
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FileNamespace({self.name!r}, paths={len(self._manifests)}, "
            f"store={self.store!r})"
        )

"""An HDFS-like data store.

Rafiki keeps training data in HDFS; here the store is a hierarchical
in-memory namespace with the same user-facing operations:

* ``import_images(directory)`` ingests a folder of images where each
  sub-folder names the label (Figure 2's ``rafiki.import_images``);
  files are ``.npy`` arrays since no image codecs ship offline;
* ``put_dataset`` / ``get_dataset`` register in-memory datasets (the
  synthetic generators);
* blobs can be stored under arbitrary paths (used by the parameter
  server for cold parameters).

Since PR 8 the blob namespace is no longer a flat dict: blobs live in
a :class:`~repro.data.fs.FileNamespace` over a chunked, replicated,
content-addressed :class:`~repro.data.blockstore.BlockStore` — so
near-duplicate blobs (successive model checkpoints) dedup structurally,
every chunk has R replicas, and overwrites retain version history
reachable via :meth:`DataStore.versions`. The blob API is unchanged;
several stores may share one block store (pass ``block_store=``) to
dedup across them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.data.blockstore import DEFAULT_CHUNK_SIZE, BlockStore
from repro.data.datasets import ImageDataset
from repro.data.fs import FileNamespace, Manifest
from repro.exceptions import DatasetNotFoundError, NotFoundError, StorageError
from repro.tenancy import TenantRegistry, current_tenant

__all__ = ["DataStore", "DatasetHandle"]


@dataclass
class DatasetHandle:
    """A reference to a dataset stored in a :class:`DataStore`."""

    name: str
    num_examples: int
    num_classes: int
    image_shape: tuple[int, ...]
    labels: tuple[str, ...] = ()
    metadata: dict = field(default_factory=dict)


class DataStore:
    """Hierarchical namespace of datasets and raw blobs.

    Datasets stay in-memory handles; blobs are chunked into the block
    store. ``nodes``/``replicas``/``chunk_size`` size a private block
    store, or pass an existing ``block_store`` to share its chunk pool
    (and dedup) with other stores.
    """

    def __init__(
        self,
        name: str = "hdfs",
        block_store: BlockStore | None = None,
        nodes: int = 3,
        replicas: int = 2,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        tenants: TenantRegistry | None = None,
    ):
        self.name = name
        #: when set, blob writes charge the ambient tenant's
        #: ``store_bytes`` quota over the *current* version's logical
        #: size; overwrites and deletes release the displaced charge.
        self.tenants = tenants
        self._blob_charges: dict[str, tuple[str, int]] = {}
        self._datasets: dict[str, ImageDataset] = {}
        self._handles: dict[str, DatasetHandle] = {}
        self.blocks = block_store or BlockStore(
            nodes=nodes, replicas=replicas, chunk_size=chunk_size
        )
        self.fs = FileNamespace(self.blocks, name=name)
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------

    def put_dataset(self, dataset: ImageDataset, labels: tuple[str, ...] = ()) -> DatasetHandle:
        """Register an in-memory dataset under its own name."""
        handle = DatasetHandle(
            name=dataset.name,
            num_examples=len(dataset),
            num_classes=dataset.num_classes,
            image_shape=dataset.image_shape,
            labels=labels,
        )
        self._datasets[dataset.name] = dataset
        self._handles[dataset.name] = handle
        self.bytes_written += sum(x.nbytes for x, _ in dataset.splits().values())
        return handle

    def get_dataset(self, name: str) -> ImageDataset:
        """Fetch a dataset by name (the paper's ``rafiki.download``)."""
        if name not in self._datasets:
            raise DatasetNotFoundError(name)
        dataset = self._datasets[name]
        self.bytes_read += sum(x.nbytes for x, _ in dataset.splits().values())
        return dataset

    def get_handle(self, name: str) -> DatasetHandle:
        if name not in self._handles:
            raise DatasetNotFoundError(name)
        return self._handles[name]

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets

    def list_datasets(self) -> list[str]:
        return sorted(self._datasets)

    def delete_dataset(self, name: str) -> None:
        if name not in self._datasets:
            raise DatasetNotFoundError(name)
        del self._datasets[name]
        del self._handles[name]

    # ------------------------------------------------------------------
    # directory ingestion
    # ------------------------------------------------------------------

    def import_images(
        self,
        directory: str,
        name: str | None = None,
        val_fraction: float = 0.2,
        test_fraction: float = 0.0,
        seed: int = 0,
    ) -> DatasetHandle:
        """Ingest ``directory/<label>/<file>.npy`` into a dataset.

        All images from the same sub-folder share the sub-folder's name
        as label, mirroring Figure 2. Arrays must share one CHW shape.
        """
        if not os.path.isdir(directory):
            raise StorageError(f"not a directory: {directory!r}")
        label_names = sorted(
            entry for entry in os.listdir(directory) if os.path.isdir(os.path.join(directory, entry))
        )
        if not label_names:
            raise StorageError(f"no label sub-folders under {directory!r}")
        images: list[np.ndarray] = []
        labels: list[int] = []
        for class_id, label in enumerate(label_names):
            folder = os.path.join(directory, label)
            for fname in sorted(os.listdir(folder)):
                if not fname.endswith(".npy"):
                    continue
                array = np.load(os.path.join(folder, fname))
                if array.ndim != 3:
                    raise StorageError(f"{fname!r}: expected a CHW array, got shape {array.shape}")
                images.append(array.astype(np.float64))
                labels.append(class_id)
        if not images:
            raise StorageError(f"no .npy images found under {directory!r}")
        shapes = {img.shape for img in images}
        if len(shapes) != 1:
            raise StorageError(f"inconsistent image shapes: {sorted(shapes)}")

        stacked = np.stack(images)
        label_arr = np.asarray(labels)
        rng = np.random.default_rng(seed)
        order = rng.permutation(stacked.shape[0])
        stacked, label_arr = stacked[order], label_arr[order]
        n = stacked.shape[0]
        n_test = int(n * test_fraction)
        n_val = int(n * val_fraction)
        n_train = n - n_val - n_test
        if n_train <= 0:
            raise StorageError(
                f"split fractions leave no training data (n={n}, val={n_val}, test={n_test})"
            )
        dataset = ImageDataset(
            name=name or os.path.basename(os.path.normpath(directory)),
            train_x=stacked[:n_train],
            train_y=label_arr[:n_train],
            val_x=stacked[n_train : n_train + n_val],
            val_y=label_arr[n_train : n_train + n_val],
            test_x=stacked[n_train + n_val :],
            test_y=label_arr[n_train + n_val :],
            num_classes=len(label_names),
        )
        return self.put_dataset(dataset, labels=tuple(label_names))

    def export_images(self, name: str, directory: str) -> int:
        """Write a dataset back to ``directory/<label>/<split>_<i>.npy``.

        The inverse of :meth:`import_images` (splits are merged — the
        directory format carries labels, not splits). Returns the number
        of images written.
        """
        dataset = self.get_dataset(name)
        handle = self.get_handle(name)
        labels = handle.labels or tuple(
            f"class{i}" for i in range(dataset.num_classes)
        )
        os.makedirs(directory, exist_ok=True)
        written = 0
        for split, (images, image_labels) in dataset.splits().items():
            for i in range(images.shape[0]):
                label = labels[int(image_labels[i])]
                folder = os.path.join(directory, label)
                os.makedirs(folder, exist_ok=True)
                np.save(os.path.join(folder, f"{split}_{i}.npy"), images[i])
                written += 1
        return written

    # ------------------------------------------------------------------
    # raw blobs
    # ------------------------------------------------------------------

    def put_blob(self, path: str, blob: bytes) -> None:
        """Store ``blob`` under ``path`` (a new version if it exists).

        With a tenant registry attached, the ambient tenant's
        ``store_bytes`` quota is checked *before* any chunk is stored
        (a denied write stores nothing) but charged only once the
        write lands (a failed write charges nothing); the charge for
        the displaced current version, if any, is then released.
        """
        tenant = displaced = None
        if self.tenants is not None:
            tenant = current_tenant()
            displaced = self._blob_charges.get(path)
            headroom = displaced[1] if displaced and displaced[0] == tenant else 0
            self.tenants.check(tenant, "store_bytes", len(blob) - headroom)
        # Write first, mutate the ledger only on success: a failed
        # write must leave no phantom charge and must not release the
        # displaced version's charge while that version still exists.
        self.fs.write(path, bytes(blob), writer=self.name)
        if self.tenants is not None:
            if displaced is not None:
                self.tenants.release(displaced[0], "store_bytes", displaced[1])
            self.tenants.ledger.charge(tenant, "store_bytes", len(blob))
            self._blob_charges[path] = (tenant, len(blob))
        self.bytes_written += len(blob)

    def get_blob(self, path: str, version: int | None = None) -> bytes:
        """Fetch a blob (current version by default, or an older one)."""
        try:
            blob = self.fs.read(path, version)
        except DatasetNotFoundError:
            raise
        except NotFoundError as exc:
            raise DatasetNotFoundError(path) from exc
        self.bytes_read += len(blob)
        return blob

    def has_blob(self, path: str) -> bool:
        return self.fs.exists(path)

    def delete_blob(self, path: str) -> None:
        try:
            self.fs.delete(path)
        except NotFoundError as exc:
            raise DatasetNotFoundError(path) from exc
        charged = self._blob_charges.pop(path, None)
        if self.tenants is not None and charged is not None:
            self.tenants.release(charged[0], "store_bytes", charged[1])

    def list_blobs(self, prefix: str = "") -> list[str]:
        return sorted(self.fs.list_paths(prefix))

    def versions(self, path: str) -> list[Manifest]:
        """Every retained manifest version of a blob, oldest first.

        Overwriting a path no longer destroys the previous contents —
        pass ``version=`` to :meth:`get_blob` to read one back.
        """
        try:
            return self.fs.versions(path)
        except NotFoundError as exc:
            raise DatasetNotFoundError(path) from exc

    def audit(self) -> dict:
        """Replication/dedup health of the underlying block store."""
        return self.blocks.audit()

    def repair(self) -> int:
        """Re-replicate under-replicated chunks; returns copies made."""
        return self.blocks.repair()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataStore({self.name!r}, datasets={len(self._datasets)}, "
            f"blobs={len(self.fs.list_paths())})"
        )

"""Procedurally generated datasets.

CIFAR-10 / ImageNet cannot be downloaded in this environment, so the
tuning and serving experiments run over synthetic datasets with a
controllable signal-to-noise ratio:

* each class gets a *template* — a smooth random texture (low-pass
  filtered Gaussian noise) — and examples are noisy, randomly shifted
  renderings of their class template;
* a ``difficulty`` knob scales the noise, controlling the accuracy a
  given model capacity can reach, which is what the tuning experiments
  need (a response surface with headroom).

A small synthetic sentiment dataset (bag-of-token-count vectors over a
signed vocabulary) is also provided because sentiment analysis is one of
the built-in tasks in the paper's Figure 2 table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["ImageDataset", "make_image_classification", "make_sentiment_dataset"]


@dataclass
class ImageDataset:
    """An in-memory split image-classification dataset (NCHW float64)."""

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    val_x: np.ndarray
    val_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.train_x.shape[1:])  # type: ignore[return-value]

    def splits(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        return {
            "train": (self.train_x, self.train_y),
            "val": (self.val_x, self.val_y),
            "test": (self.test_x, self.test_y),
        }

    def __len__(self) -> int:
        return self.train_x.shape[0] + self.val_x.shape[0] + self.test_x.shape[0]


def _smooth(noise: np.ndarray, passes: int = 3) -> np.ndarray:
    """Cheap low-pass filter: repeated 4-neighbour averaging."""
    out = noise
    for _ in range(passes):
        out = (
            out
            + np.roll(out, 1, axis=-1)
            + np.roll(out, -1, axis=-1)
            + np.roll(out, 1, axis=-2)
            + np.roll(out, -1, axis=-2)
        ) / 5.0
    return out


def _render_examples(
    templates: np.ndarray,
    labels: np.ndarray,
    noise_std: float,
    max_shift: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Render noisy, randomly shifted copies of each label's template."""
    count = labels.shape[0]
    _, channels, height, width = templates.shape
    images = templates[labels].copy()
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(count, 2))
        for i in range(count):
            images[i] = np.roll(images[i], tuple(shifts[i]), axis=(1, 2))
    images += rng.normal(0.0, noise_std, size=(count, channels, height, width))
    return images


def make_image_classification(
    name: str = "synthetic-cifar",
    num_classes: int = 10,
    image_shape: tuple[int, int, int] = (3, 32, 32),
    train_per_class: int = 64,
    val_per_class: int = 16,
    test_per_class: int = 16,
    difficulty: float = 0.5,
    max_shift: int = 2,
    seed: int = 0,
) -> ImageDataset:
    """Generate a class-conditional textured image dataset.

    ``difficulty`` in [0, 2] scales the additive noise relative to the
    template contrast; 0.5 gives a dataset a small ConvNet can push past
    90% accuracy, matching the CIFAR-10 regime of Section 7.1.
    """
    if num_classes < 2:
        raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
    if difficulty < 0:
        raise ConfigurationError(f"difficulty must be >= 0, got {difficulty}")
    channels, height, width = image_shape
    rng = derive_rng(seed, f"dataset:{name}")
    templates = _smooth(rng.normal(0.0, 1.0, size=(num_classes, channels, height, width)))
    # Normalise template contrast so 'difficulty' has a consistent meaning.
    templates /= templates.std() + 1e-12
    noise_std = float(difficulty)

    def _split(per_class: int, tag: str) -> tuple[np.ndarray, np.ndarray]:
        split_rng = derive_rng(seed, f"dataset:{name}:{tag}")
        labels = np.repeat(np.arange(num_classes), per_class)
        split_rng.shuffle(labels)
        images = _render_examples(templates, labels, noise_std, max_shift, split_rng)
        return images, labels

    train_x, train_y = _split(train_per_class, "train")
    val_x, val_y = _split(val_per_class, "val")
    test_x, test_y = _split(test_per_class, "test")
    return ImageDataset(
        name=name,
        train_x=train_x,
        train_y=train_y,
        val_x=val_x,
        val_y=val_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=num_classes,
    )


def make_sentiment_dataset(
    name: str = "synthetic-sentiment",
    vocab_size: int = 200,
    train_count: int = 400,
    test_count: int = 100,
    doc_length: int = 30,
    signal: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a binary sentiment task as token-count vectors.

    Half the vocabulary carries positive polarity and half negative;
    documents sample tokens biased toward their label's polarity.
    Returns ``(train_x, train_y, test_x, test_y)``.
    """
    if vocab_size < 4:
        raise ConfigurationError(f"vocab_size must be >= 4, got {vocab_size}")
    rng = derive_rng(seed, f"dataset:{name}")
    polarity = np.concatenate(
        [np.ones(vocab_size // 2), -np.ones(vocab_size - vocab_size // 2)]
    )

    def _sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 2, size=count)
        logits = polarity[None, :] * (2 * labels[:, None] - 1) * signal
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        counts = np.vstack([rng.multinomial(doc_length, p) for p in probs]).astype(np.float64)
        return counts, labels

    train_x, train_y = _sample(train_count)
    test_x, test_y = _sample(test_count)
    return train_x, train_y, test_x, test_y

"""Synthetic single-object detection data (Figure 2's ObjectDetection task).

Each image contains one bright rectangular blob on textured noise; the
label is its bounding box ``(cx, cy, w, h)`` normalised to [0, 1]. The
Figure 2 API notes that for detection the output shape "could be ...
bounding-box shape" — these datasets exercise that path: a regression
head with 4 outputs trained with MSE, evaluated by IoU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import derive_rng

__all__ = ["DetectionDataset", "make_object_detection", "iou", "mean_iou"]


@dataclass
class DetectionDataset:
    """Images (NCHW) with one normalised box ``(cx, cy, w, h)`` each."""

    name: str
    train_x: np.ndarray
    train_boxes: np.ndarray
    val_x: np.ndarray
    val_boxes: np.ndarray

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.train_x.shape[1:])  # type: ignore[return-value]


def _render_split(count: int, image_shape, noise: float, rng) -> tuple[np.ndarray, np.ndarray]:
    channels, height, width = image_shape
    images = rng.normal(0.0, noise, size=(count, channels, height, width))
    boxes = np.empty((count, 4))
    for i in range(count):
        bw = rng.integers(max(height // 4, 2), max(height // 2, 3))
        bh = rng.integers(max(height // 4, 2), max(height // 2, 3))
        x0 = rng.integers(0, width - bw + 1)
        y0 = rng.integers(0, height - bh + 1)
        images[i, :, y0 : y0 + bh, x0 : x0 + bw] += 2.0
        boxes[i] = [
            (x0 + bw / 2.0) / width,
            (y0 + bh / 2.0) / height,
            bw / width,
            bh / height,
        ]
    return images, boxes


def make_object_detection(
    name: str = "synthetic-boxes",
    image_shape: tuple[int, int, int] = (1, 16, 16),
    train_count: int = 200,
    val_count: int = 50,
    noise: float = 0.3,
    seed: int = 0,
) -> DetectionDataset:
    """Generate a single-object localisation dataset."""
    if noise < 0:
        raise ConfigurationError(f"noise must be >= 0, got {noise}")
    if min(image_shape[1], image_shape[2]) < 8:
        raise ConfigurationError(f"images must be at least 8x8, got {image_shape}")
    train_rng = derive_rng(seed, f"detection:{name}:train")
    val_rng = derive_rng(seed, f"detection:{name}:val")
    train_x, train_boxes = _render_split(train_count, image_shape, noise, train_rng)
    val_x, val_boxes = _render_split(val_count, image_shape, noise, val_rng)
    return DetectionDataset(name, train_x, train_boxes, val_x, val_boxes)


def iou(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Intersection-over-union of two ``(cx, cy, w, h)`` boxes."""
    ax0, ay0 = box_a[0] - box_a[2] / 2, box_a[1] - box_a[3] / 2
    ax1, ay1 = box_a[0] + box_a[2] / 2, box_a[1] + box_a[3] / 2
    bx0, by0 = box_b[0] - box_b[2] / 2, box_b[1] - box_b[3] / 2
    bx1, by1 = box_b[0] + box_b[2] / 2, box_b[1] + box_b[3] / 2
    inter_w = max(0.0, min(ax1, bx1) - max(ax0, bx0))
    inter_h = max(0.0, min(ay1, by1) - max(ay0, by0))
    intersection = inter_w * inter_h
    union = box_a[2] * box_a[3] + box_b[2] * box_b[3] - intersection
    if union <= 0:
        return 0.0
    return float(intersection / union)


def mean_iou(predicted: np.ndarray, target: np.ndarray) -> float:
    """Mean IoU over batches of boxes."""
    predicted = np.asarray(predicted)
    target = np.asarray(target)
    if predicted.shape != target.shape or predicted.ndim != 2 or predicted.shape[1] != 4:
        raise ConfigurationError(
            f"expected matching (N, 4) box arrays, got {predicted.shape} / {target.shape}"
        )
    return float(np.mean([iou(p, t) for p, t in zip(predicted, target)]))

"""Preprocessing and augmentation operators (Table 1, group 1).

Each operator is a callable ``op(batch, rng) -> batch`` over NCHW
arrays; :class:`Compose` chains them. Stateful operators
(:class:`Standardize`, :class:`ZCAWhitening`) are fitted on the training
split first, matching the paper's "subtract the mean and divide the
standard deviation ... computed on the training images".
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "Compose",
    "Standardize",
    "PadCrop",
    "RandomFlip",
    "RandomRotation",
    "ZCAWhitening",
    "standard_cifar_pipeline",
]


class Compose:
    """Apply operators in sequence."""

    def __init__(self, ops):
        self.ops = list(ops)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for op in self.ops:
            batch = op(batch, rng)
        return batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compose({[type(op).__name__ for op in self.ops]})"


class Standardize:
    """Per-channel mean/std normalisation fitted on training data."""

    def __init__(self):
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, train_x: np.ndarray) -> "Standardize":
        self.mean = train_x.mean(axis=(0, 2, 3)).reshape(1, -1, 1, 1)
        self.std = train_x.std(axis=(0, 2, 3)).reshape(1, -1, 1, 1) + 1e-8
        return self

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise ConfigurationError("Standardize must be fitted before use")
        return (batch - self.mean) / self.std


class PadCrop:
    """Zero-pad each side then take a random crop of the original size.

    The paper pads CIFAR images by 4 pixels to 40x40 and randomly crops
    a 32x32 patch. At evaluation time use ``deterministic=True`` for a
    centre crop.
    """

    def __init__(self, pad: int = 4, deterministic: bool = False):
        if pad < 0:
            raise ConfigurationError(f"pad must be >= 0, got {pad}")
        self.pad = int(pad)
        self.deterministic = bool(deterministic)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.pad == 0:
            return batch
        n, c, h, w = batch.shape
        padded = np.pad(
            batch, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)), mode="constant"
        )
        out = np.empty_like(batch)
        if self.deterministic:
            out[...] = padded[:, :, self.pad : self.pad + h, self.pad : self.pad + w]
            return out
        tops = rng.integers(0, 2 * self.pad + 1, size=n)
        lefts = rng.integers(0, 2 * self.pad + 1, size=n)
        for i in range(n):
            out[i] = padded[i, :, tops[i] : tops[i] + h, lefts[i] : lefts[i] + w]
        return out


class RandomFlip:
    """Horizontal flip with probability ``p`` (0.5 in the paper)."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.p == 0.0:
            return batch
        flips = rng.random(batch.shape[0]) < self.p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out


class RandomRotation:
    """Rotate each image by a uniform angle in ``[0, max_degrees)``.

    Table 1 lists image rotation with domain [0, 30). Implemented with
    :func:`scipy.ndimage.rotate` (nearest-neighbour padding removed by
    ``reshape=False``).
    """

    def __init__(self, max_degrees: float = 30.0):
        if not 0.0 <= max_degrees < 360.0:
            raise ConfigurationError(f"max_degrees must be in [0, 360), got {max_degrees}")
        self.max_degrees = float(max_degrees)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.max_degrees == 0.0:
            return batch
        from scipy.ndimage import rotate

        out = np.empty_like(batch)
        angles = rng.uniform(0.0, self.max_degrees, size=batch.shape[0])
        for i in range(batch.shape[0]):
            out[i] = rotate(batch[i], angles[i], axes=(1, 2), reshape=False, order=1)
        return out


class ZCAWhitening:
    """ZCA whitening fitted on the (flattened) training images.

    Table 1 lists {PCA, ZCA} whitening as a preprocessing knob. For PCA
    whitening pass ``zca=False`` (the output is then in the rotated PCA
    basis rather than image space).
    """

    def __init__(self, eps: float = 1e-2, zca: bool = True):
        self.eps = float(eps)
        self.zca = bool(zca)
        self._transform: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train_x: np.ndarray) -> "ZCAWhitening":
        flat = train_x.reshape(train_x.shape[0], -1)
        self._mean = flat.mean(axis=0)
        centred = flat - self._mean
        cov = centred.T @ centred / flat.shape[0]
        eigvals, eigvecs = np.linalg.eigh(cov)
        scale = np.diag(1.0 / np.sqrt(np.maximum(eigvals, 0.0) + self.eps))
        if self.zca:
            self._transform = eigvecs @ scale @ eigvecs.T
        else:
            self._transform = eigvecs @ scale
        return self

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self._transform is None or self._mean is None:
            raise ConfigurationError("ZCAWhitening must be fitted before use")
        shape = batch.shape
        flat = batch.reshape(shape[0], -1) - self._mean
        whitened = flat @ self._transform
        if self.zca:
            return whitened.reshape(shape)
        return whitened


def standard_cifar_pipeline(train_x: np.ndarray, pad: int = 4, flip_p: float = 0.5) -> Compose:
    """The paper's standard CIFAR-10 preprocessing sequence.

    Per-channel standardisation (fitted on ``train_x``), ``pad``-pixel
    zero padding with random crop back to the original size, and a
    random horizontal flip.
    """
    return Compose([Standardize().fit(train_x), PadCrop(pad=pad), RandomFlip(p=flip_p)])

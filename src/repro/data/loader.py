"""Mini-batch loader."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["BatchLoader"]


class BatchLoader:
    """Iterate ``(inputs, labels)`` mini-batches, optionally shuffled.

    The loader re-shuffles at the start of every iteration, so a single
    instance can be reused across epochs.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if inputs.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"inputs/labels length mismatch: {inputs.shape[0]} vs {labels.shape[0]}"
            )
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be > 0, got {batch_size}")
        self.inputs = inputs
        self.labels = labels
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = self.inputs.shape[0]
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = self.inputs.shape[0]
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and idx.shape[0] < self.batch_size:
                return
            yield self.inputs[idx], self.labels[idx]

"""Logical query plans for the SQL extension.

:func:`build_plan` lowers a parsed :class:`~repro.sqlext.engine.SelectStatement`
into a linear chain of operators::

    Limit -> Sort -> Project | Aggregate -> Filter -> Scan

performing the same statement-level validation as the naive interpreter
(GROUP BY coverage of non-aggregate select items) so both executors
reject malformed statements with identical errors. Column existence is
deliberately *not* checked here — the naive oracle resolves columns
lazily per row, so an unknown column in a query over an empty table
must succeed on both paths.

The optimizer (:mod:`repro.sqlext.optimizer`) rewrites this chain:
UDF calls move into explicit :class:`EvalUdf` operators, plain
predicates sink toward the :class:`Scan`, and the scan's column set is
pruned. :func:`explain_plan` renders any plan as stable indented text —
the golden-snapshot format used by ``tests/test_sql_plan.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.exceptions import SQLExecutionError
from repro.sqlext.engine import (
    _AGGREGATES,
    ColumnRef,
    Comparison,
    FuncCall,
    SelectStatement,
    render_expr,
)

__all__ = [
    "Scan",
    "Filter",
    "EvalUdf",
    "Project",
    "Aggregate",
    "Sort",
    "Limit",
    "build_plan",
    "explain_plan",
    "is_aggregate_call",
]


def is_aggregate_call(expr: Any) -> bool:
    """True when ``expr`` is a call to a builtin aggregate function."""
    return isinstance(expr, FuncCall) and expr.name in _AGGREGATES


@dataclass(frozen=True)
class Scan:
    """Read rows from a base table; ``columns=None`` means all columns."""

    table: str
    columns: tuple[str, ...] | None = None


@dataclass(frozen=True)
class Filter:
    """Keep rows passing every predicate (evaluated in order, AND)."""

    child: Any
    predicates: tuple[Comparison, ...]


@dataclass(frozen=True)
class EvalUdf:
    """Materialize UDF results as generated columns on each row.

    ``calls`` is an ordered tuple of ``(output_column, FuncCall)``
    pairs. This is the *batching* operator: the planned executor
    collects the argument of each call across every surviving row and
    dispatches them as batches through the serving batcher and
    prediction cache instead of one model call per row.
    """

    child: Any
    calls: tuple[tuple[str, FuncCall], ...]


@dataclass(frozen=True)
class Project:
    """Compute the final select-list expressions as named outputs."""

    child: Any
    outputs: tuple[tuple[str, Any], ...]  # (name, expr)


@dataclass(frozen=True)
class Aggregate:
    """Group rows and fold aggregates, mirroring the naive interpreter.

    ``outputs`` preserves select-list order; each entry is
    ``(name, kind, expr)`` with kind ``"key"`` (grouping expression) or
    ``"agg"`` (aggregate call). Grouping uses the evaluated key
    expressions only — exactly like the oracle, the ``group_by`` names
    themselves are validation metadata, not an execution input.
    """

    child: Any
    outputs: tuple[tuple[str, str, Any], ...]
    group_by: tuple[str, ...]


@dataclass(frozen=True)
class Sort:
    """Order result rows by named output columns (stable, right-to-left)."""

    child: Any
    keys: tuple[tuple[str, bool], ...]  # (column name, descending)


@dataclass(frozen=True)
class Limit:
    """Truncate the result to the first ``count`` rows."""

    child: Any
    count: int


def build_plan(statement: SelectStatement) -> Any:
    """Lower a parsed statement into the canonical unoptimized plan."""
    plan: Any = Scan(statement.table, None)
    if statement.where:
        plan = Filter(plan, statement.where)
    has_aggregate = any(is_aggregate_call(item.expr) for item in statement.items)
    if has_aggregate or statement.group_by:
        group_names = set(statement.group_by)
        outputs = []
        for item in statement.items:
            if is_aggregate_call(item.expr):
                outputs.append((item.output_name(), "agg", item.expr))
                continue
            if statement.group_by:
                if item.output_name() not in group_names and not (
                    isinstance(item.expr, ColumnRef)
                    and item.expr.name in group_names
                ):
                    raise SQLExecutionError(
                        f"{item.output_name()!r} must appear in GROUP BY"
                    )
            else:
                raise SQLExecutionError(
                    "non-aggregate select items require GROUP BY"
                )
            outputs.append((item.output_name(), "key", item.expr))
        plan = Aggregate(plan, tuple(outputs), statement.group_by)
    else:
        plan = Project(
            plan,
            tuple((item.output_name(), item.expr) for item in statement.items),
        )
    if statement.order_by:
        plan = Sort(plan, statement.order_by)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return plan


def explain_plan(plan: Any) -> str:
    """Render a plan as stable indented text (one operator per line)."""
    lines: list[str] = []
    node = plan
    depth = 0

    def add(text: str) -> None:
        lines.append("  " * depth + text)

    while node is not None:
        child = None
        if isinstance(node, Limit):
            add(f"Limit(count={node.count})")
            child = node.child
        elif isinstance(node, Sort):
            keys = ", ".join(
                f"{name} {'DESC' if descending else 'ASC'}"
                for name, descending in node.keys
            )
            add(f"Sort({keys})")
            child = node.child
        elif isinstance(node, Project):
            outputs = ", ".join(
                _render_output(name, expr) for name, expr in node.outputs
            )
            add(f"Project({outputs})")
            child = node.child
        elif isinstance(node, Aggregate):
            keys = [
                _render_output(name, expr)
                for name, kind, expr in node.outputs if kind == "key"
            ]
            aggs = [
                _render_output(name, expr)
                for name, kind, expr in node.outputs if kind == "agg"
            ]
            group = ", ".join(node.group_by)
            add(
                f"Aggregate(keys=[{', '.join(keys)}], "
                f"aggs=[{', '.join(aggs)}], group_by=[{group}])"
            )
            child = node.child
        elif isinstance(node, EvalUdf):
            calls = ", ".join(
                f"{name} := {render_expr(call)}" for name, call in node.calls
            )
            add(f"EvalUdf({calls})")
            child = node.child
        elif isinstance(node, Filter):
            preds = " AND ".join(render_expr(p) for p in node.predicates)
            add(f"Filter({preds})")
            child = node.child
        elif isinstance(node, Scan):
            if node.columns is None:
                add(f"Scan({node.table})")
            else:
                add(f"Scan({node.table}, columns=[{', '.join(node.columns)}])")
        else:
            add(f"?{node!r}")
        node = child
        depth += 1
    return "\n".join(lines)


def _render_output(name: str, expr: Any) -> str:
    rendered = render_expr(expr)
    return rendered if rendered == name else f"{rendered} AS {name}"

"""Rewrite passes over logical plans.

:func:`optimize_plan` runs three passes in a fixed order:

1. :func:`extract_udfs` — every non-aggregate function call is hoisted
   out of predicates and select expressions into an explicit
   :class:`~repro.sqlext.plan.EvalUdf` operator that materializes the
   result as a generated ``__udf<N>`` column. Duplicate calls (same
   function, same rewritten argument) share one generated column —
   common-UDF-subexpression elimination. WHERE predicates keep their
   textual order as a *cascade* of Filter stages so a UDF guarding a
   later predicate only ever runs on rows that survived the earlier
   ones — the planned path can then never make more UDF calls than the
   short-circuiting naive oracle. Select-list UDFs evaluate after all
   filtering, i.e. only on surviving rows.
2. :func:`pushdown_predicates` — predicates that touch no function
   call and no generated column sink to a single Filter directly above
   the Scan, below every EvalUdf. A predicate referencing a UDF output
   is deliberately *not* pushed (it would read a column that does not
   exist yet) — that skip has a dedicated regression test.
3. :func:`prune_columns` — the Scan is annotated with exactly the base
   columns the rest of the plan reads, so row batches carry no dead
   values.

Passes never validate column existence: like the naive oracle, unknown
columns surface lazily at evaluation time, row by row.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.sqlext.engine import ColumnRef, Comparison, FuncCall, _AGGREGATES
from repro.sqlext.plan import (
    Aggregate,
    EvalUdf,
    Filter,
    Limit,
    Project,
    Scan,
    Sort,
)

__all__ = [
    "optimize_plan",
    "extract_udfs",
    "pushdown_predicates",
    "prune_columns",
    "GENERATED_PREFIX",
]

#: prefix for optimizer-generated UDF output columns.
GENERATED_PREFIX = "__udf"


def _chain(plan: Any) -> list[Any]:
    """The plan as a top-to-bottom list of operators (Scan last)."""
    nodes = []
    node = plan
    while node is not None:
        nodes.append(node)
        node = getattr(node, "child", None)
    return nodes


def _rebuild(nodes: list[Any]) -> Any:
    """Re-link a top-to-bottom operator list into a plan."""
    plan = nodes[-1]
    for node in reversed(nodes[:-1]):
        plan = replace(node, child=plan)
    return plan


def _walk_exprs(expr: Any):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, Comparison):
        yield from _walk_exprs(expr.left)
        yield from _walk_exprs(expr.right)
    elif isinstance(expr, FuncCall) and expr.arg != "*":
        yield from _walk_exprs(expr.arg)


def _column_names(plan: Any) -> set[str]:
    """Every column name referenced anywhere in the plan's expressions."""
    names: set[str] = set()
    for node in _chain(plan):
        for expr in _node_exprs(node):
            for sub in _walk_exprs(expr):
                if isinstance(sub, ColumnRef):
                    names.add(sub.name)
    return names


def _node_exprs(node: Any) -> list[Any]:
    if isinstance(node, Filter):
        return list(node.predicates)
    if isinstance(node, EvalUdf):
        return [call for _, call in node.calls]
    if isinstance(node, Project):
        return [expr for _, expr in node.outputs]
    if isinstance(node, Aggregate):
        return [expr for _, _, expr in node.outputs]
    return []


class _UdfExtractor:
    """Shared rewrite state: one generated column per distinct call."""

    def __init__(self, reserved: set[str]):
        self.reserved = reserved
        self.by_call: dict[FuncCall, str] = {}
        self.counter = 0

    def _new_name(self) -> str:
        while True:
            name = f"{GENERATED_PREFIX}{self.counter}"
            self.counter += 1
            if name not in self.reserved:
                return name

    def rewrite(self, expr: Any, new_calls: list[tuple[str, FuncCall]]) -> Any:
        """Rewrite ``expr``, appending newly-materialized calls in order."""
        if isinstance(expr, Comparison):
            left = self.rewrite(expr.left, new_calls)
            right = self.rewrite(expr.right, new_calls)
            return Comparison(left, expr.op, right)
        if isinstance(expr, FuncCall):
            if expr.arg == "*":
                return expr
            arg = self.rewrite(expr.arg, new_calls)
            if expr.name in _AGGREGATES:
                # Aggregates fold per group; only their argument's UDFs
                # are hoisted (computed per input row, batched).
                return FuncCall(expr.name, arg)
            call = FuncCall(expr.name, arg)
            if call not in self.by_call:
                name = self._new_name()
                self.by_call[call] = name
                new_calls.append((name, call))
            return ColumnRef(self.by_call[call])
        return expr


def extract_udfs(plan: Any) -> Any:
    """Hoist UDF calls into EvalUdf stages (with CSE); see module docs."""
    nodes = _chain(plan)
    scan = nodes[-1]
    head = nodes[:-1]

    where: Filter | None = None
    if head and isinstance(head[-1], Filter):
        where = head[-1]
        head = head[:-1]
    # ``head`` is now [Limit?, Sort?, Project|Aggregate].

    extractor = _UdfExtractor(_column_names(plan))
    middle: list[Any] = []  # bottom-to-top, starting just above the Scan

    if where is not None:
        plain: list[Comparison] = []

        def flush_plain() -> None:
            if plain:
                middle.append(Filter(None, tuple(plain)))
                plain.clear()

        for predicate in where.predicates:
            new_calls: list[tuple[str, FuncCall]] = []
            rewritten = extractor.rewrite(predicate, new_calls)
            if new_calls:
                flush_plain()
                middle.append(EvalUdf(None, tuple(new_calls)))
                middle.append(Filter(None, (rewritten,)))
            else:
                plain.append(rewritten)
        flush_plain()

    select_calls: list[tuple[str, FuncCall]] = []
    output_node = head[-1]
    if isinstance(output_node, Project):
        outputs = tuple(
            (name, extractor.rewrite(expr, select_calls))
            for name, expr in output_node.outputs
        )
        output_node = replace(output_node, outputs=outputs)
    elif isinstance(output_node, Aggregate):
        outputs = tuple(
            (name, kind, extractor.rewrite(expr, select_calls))
            for name, kind, expr in output_node.outputs
        )
        output_node = replace(output_node, outputs=outputs)
    if select_calls:
        middle.append(EvalUdf(None, tuple(select_calls)))

    top = list(head[:-1]) + [output_node] + list(reversed(middle)) + [scan]
    return _rebuild(top)


def _generated_columns(plan: Any) -> set[str]:
    return {
        name
        for node in _chain(plan)
        if isinstance(node, EvalUdf)
        for name, _ in node.calls
    }


def pushdown_predicates(plan: Any) -> Any:
    """Sink UDF-free predicates to one Filter directly above the Scan."""
    nodes = _chain(plan)
    generated = _generated_columns(plan)

    def pushable(predicate: Comparison) -> bool:
        for sub in _walk_exprs(predicate):
            if isinstance(sub, FuncCall):
                return False  # UDF (not yet extracted) or aggregate
            if isinstance(sub, ColumnRef) and sub.name in generated:
                return False  # reads a UDF output that doesn't exist yet
        return True

    # Split the chain at the first Project/Aggregate: only Filter and
    # EvalUdf operators live between it and the Scan.
    split = next(
        i for i, n in enumerate(nodes) if isinstance(n, (Project, Aggregate))
    )
    head, middle, scan = nodes[: split + 1], nodes[split + 1 : -1], nodes[-1]

    pushed: list[Comparison] = []
    kept: list[Any] = []
    for node in reversed(middle):  # bottom-up keeps WHERE order in ``pushed``
        if isinstance(node, Filter) and all(pushable(p) for p in node.predicates):
            pushed.extend(node.predicates)
        else:
            kept.append(node)
    kept.reverse()
    if pushed:
        kept.append(Filter(None, tuple(pushed)))
    return _rebuild(head + kept + [scan])


def prune_columns(plan: Any) -> Any:
    """Annotate the Scan with exactly the base columns the plan reads."""
    nodes = _chain(plan)
    generated = _generated_columns(plan)
    needed = sorted(
        name for name in _column_names(plan) if name not in generated
    )
    return _rebuild(nodes[:-1] + [replace(nodes[-1], columns=tuple(needed))])


def optimize_plan(plan: Any) -> Any:
    """Run every pass in order; safe on any canonical plan."""
    if not isinstance(_chain(plan)[-1], Scan):
        return plan
    plan = extract_udfs(plan)
    plan = pushdown_predicates(plan)
    plan = prune_columns(plan)
    return plan

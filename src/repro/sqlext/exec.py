"""Query executors: the naive oracle and the planned/batched pipeline.

Two executors share the AST and produce bit-identical results:

* :class:`NaiveExecutor` — the original row-at-a-time interpreter,
  preserved verbatim. It defines the engine's semantics (lazy column
  resolution, WHERE short-circuiting, group ordering, sort stability)
  and serves as the oracle for the differential test harness.
* :class:`PlannedExecutor` — runs optimized logical plans. Its
  :class:`~repro.sqlext.plan.EvalUdf` operator hands each UDF's
  arguments for *all* surviving rows to a
  :class:`UdfBatchDispatcher`, which dedupes them, serves repeats from
  a :class:`~repro.core.serve.pred_cache.PredictionCache`, and chunks
  the distinct misses into hardware batches chosen by the serving
  layer's :class:`~repro.core.serve.batching.GreedyBatcher` — so an
  analytical scan rides the same SLO-aware inference path as online
  serving. Each chunk dispatch passes the ``sql.udf.dispatch`` chaos
  point under a seeded :class:`~repro.utils.retry.RetryPolicy`;
  exhausted retries shed the query with
  :class:`~repro.exceptions.RequestShedError` (the gateway maps that
  to HTTP 429), mirroring the serving front end.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro import chaos, telemetry
from repro.core.serve.batching import DEFAULT_BATCH_SIZES, GreedyBatcher
from repro.core.serve.pred_cache import PredictionCache
from repro.core.serve.request import RequestQueue
from repro.exceptions import (
    InjectedFault,
    RequestShedError,
    RetryExhaustedError,
    SQLExecutionError,
)
from repro.sqlext.engine import (
    _AGGREGATES,
    _OPS,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    ResultSet,
    SelectStatement,
)
from repro.sqlext.plan import (
    Aggregate,
    EvalUdf,
    Filter,
    Limit,
    Project,
    Scan,
    Sort,
    build_plan,
)
from repro.sqlext.table import Table
from repro.utils.retry import RetryPolicy

__all__ = ["NaiveExecutor", "PlannedExecutor", "UdfBatchDispatcher"]


def _scalar_key(value: Any) -> tuple[str, str]:
    """A deterministic cache key for a scalar UDF argument.

    ``repr`` round-trips ints, floats, strings, bools and None exactly;
    pairing it with the type name keeps ``1`` / ``1.0`` / ``True`` and
    ``'1'`` distinct.
    """
    return (type(value).__name__, repr(value))


class UdfBatchDispatcher:
    """Batched, cached, fault-tolerant UDF dispatch for the executor.

    One per :class:`~repro.sqlext.engine.Database`. ``call_batch``
    takes every argument an :class:`~repro.sqlext.plan.EvalUdf`
    operator collected and returns aligned results, having made as few
    underlying model calls as possible: duplicate arguments collapse,
    cached results are reused across queries, and the distinct misses
    are carved into hardware batches by replaying the serving layer's
    greedy SLO policy over a simulated arrival queue (everything
    arrives at once; leftovers below ``min(B)`` flush via the padded
    leftover rule at the SLO deadline).
    """

    FAULT_POINT = "sql.udf.dispatch"

    def __init__(
        self,
        registry,
        batching: bool = True,
        cache_capacity: int = 1024,
        batch_sizes: Sequence[int] | None = None,
        tau: float = 0.56,
        retry: RetryPolicy | None = None,
    ):
        self.registry = registry
        self.batching = batching
        self.cache_capacity = int(cache_capacity)
        sizes = tuple(batch_sizes) if batch_sizes else DEFAULT_BATCH_SIZES
        # A nominal affine latency model: per-batch overhead plus
        # per-row cost, the shape Section 7.2.1 fits for real models.
        self.batcher = GreedyBatcher(
            sizes, latency=lambda b: 0.01 + 0.001 * b, tau=tau
        )
        self.retry = retry or RetryPolicy(
            max_attempts=3, retry_on=(InjectedFault,), seed=0
        )
        self._caches: dict[str, PredictionCache] = {}
        self.batches_dispatched = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.sheds = 0
        #: deterministic event log (dispatch/latency/retry/shed) — the
        #: chaos tests assert same-seed runs produce identical traces.
        self.trace: list[dict] = []

    def call_batch(self, name: str, args: list[Any]) -> list[Any]:
        """Evaluate ``name`` over ``args``; results align with ``args``."""
        if not args:
            return []
        if not self.batching:
            return [self.registry.call(name, value) for value in args]
        key = name.lower()
        if self.cache_capacity > 0:
            cache = self._caches.get(key)
            if cache is None:
                cache = self._caches[key] = PredictionCache(
                    predict=None, capacity=self.cache_capacity
                )
        else:
            # Caching disabled: a throwaway cache still collapses
            # duplicates within this one batch, but remembers nothing.
            cache = PredictionCache(predict=None, capacity=max(1, len(args)))
        hits_before, misses_before = cache.hits, cache.misses
        values = cache.query_batch(
            args,
            predict_batch=lambda misses: self._dispatch_all(name, misses),
            key=_scalar_key,
        )
        if self.cache_capacity > 0:
            delta_hits = cache.hits - hits_before
            delta_misses = cache.misses - misses_before
            self.cache_hits += delta_hits
            self.cache_misses += delta_misses
            registry = telemetry.get_registry()
            if delta_hits:
                registry.counter(
                    "repro_sql_cache_hits_total",
                    "SQL UDF arguments served from the prediction cache.",
                ).inc(delta_hits, udf=key)
            if delta_misses:
                registry.counter(
                    "repro_sql_cache_misses_total",
                    "SQL UDF arguments that missed the prediction cache.",
                ).inc(delta_misses, udf=key)
        return values

    def invalidate(self) -> None:
        """Drop every cached result (call after re-deploying models)."""
        for cache in self._caches.values():
            cache.invalidate_all()

    # ------------------------------------------------------------------

    def _dispatch_all(self, name: str, args: list[Any]) -> list[Any]:
        results: list[Any] = []
        for chunk in self._chunks(args):
            results.extend(self._dispatch_chunk(name, chunk))
        return results

    def _chunks(self, args: list[Any]) -> list[list[Any]]:
        """Carve ``args`` into hardware batches via the greedy policy.

        All requests enter a simulated queue at t=0; the batcher drains
        it with Algorithm 3, jumping the clock to its own next deadline
        whenever it prefers to wait (which flushes the sub-``min(B)``
        leftovers through the padded-batch grace rule).
        """
        queue = RequestQueue()
        queue.push(0.0, len(args))
        now = 0.0
        start = 0
        chunks: list[list[Any]] = []
        while queue:
            decision = self.batcher.decide(queue, now)
            if decision.dispatch:
                taken = len(queue.pop_oldest(decision.take))
                chunks.append(args[start:start + taken])
                start += taken
            else:
                now = self.batcher.next_deadline(queue, now)
        return chunks

    def _dispatch_chunk(self, name: str, chunk: list[Any]) -> list[Any]:
        udf = name.lower()

        def attempt() -> list[Any]:
            latency = chaos.fire(self.FAULT_POINT)
            if latency:
                self.trace.append(
                    {"event": "latency", "udf": udf, "seconds": round(latency, 9)}
                )
            return self.registry.call_batch(name, chunk)

        def on_retry(attempt_index: int, error: BaseException) -> None:
            self.retries += 1
            telemetry.get_registry().counter(
                "repro_sql_udf_retries_total",
                "SQL UDF batch dispatches retried after an injected fault.",
            ).inc(udf=udf)
            self.trace.append(
                {
                    "event": "retry",
                    "udf": udf,
                    "attempt": attempt_index,
                    "error": type(error).__name__,
                }
            )

        try:
            results = self.retry.call(
                attempt, name=self.FAULT_POINT, on_retry=on_retry
            )
        except RetryExhaustedError as exc:
            self.sheds += 1
            telemetry.get_registry().counter(
                "repro_sql_udf_sheds_total",
                "SQL queries shed after exhausting UDF dispatch retries.",
            ).inc(udf=udf)
            self.trace.append({"event": "shed", "udf": udf, "rows": len(chunk)})
            raise RequestShedError(
                reason="dispatch_failed",
                retry_after=self.batcher.tau,
                detail=f"udf {udf!r} batch of {len(chunk)}: {exc.last_error}",
            ) from exc
        self.batches_dispatched += 1
        registry = telemetry.get_registry()
        registry.counter(
            "repro_sql_udf_batches_total",
            "Batched SQL UDF dispatches, by function.",
        ).inc(udf=udf)
        registry.counter(
            "repro_sql_udf_batch_rows_total",
            "Arguments carried by batched SQL UDF dispatches.",
        ).inc(len(chunk), udf=udf)
        self.trace.append({"event": "dispatch", "udf": udf, "rows": len(chunk)})
        return results


class PlannedExecutor:
    """Runs logical plans; UDFs dispatch in batches per EvalUdf stage."""

    def __init__(self, database, dispatcher: UdfBatchDispatcher):
        self.database = database
        self.dispatcher = dispatcher
        self.last_plan: Any = None

    def execute(self, statement: SelectStatement, table: Table,
                optimize: bool = True) -> ResultSet:
        """Plan, (optionally) optimize, and run one statement."""
        from repro.sqlext.optimizer import optimize_plan

        plan = build_plan(statement)
        if optimize:
            plan = optimize_plan(plan)
        self.last_plan = plan
        return self._run(plan, table)

    # ------------------------------------------------------------------

    def _run(self, node: Any, table: Table) -> ResultSet:
        if isinstance(node, Limit):
            result = self._run(node.child, table)
            del result.rows[node.count:]
            return result
        if isinstance(node, Sort):
            result = self._run(node.child, table)
            self._sort(result, node.keys)
            return result
        if isinstance(node, Project):
            rows = self._rows(node.child, table)
            columns = [name for name, _ in node.outputs]
            out = [
                tuple(self._evaluate(expr, row) for _, expr in node.outputs)
                for row in rows
            ]
            return ResultSet(columns, out)
        if isinstance(node, Aggregate):
            return self._aggregate_rows(node, self._rows(node.child, table))
        raise SQLExecutionError(f"cannot execute plan node {node!r}")

    def _rows(self, node: Any, table: Table) -> list[dict]:
        if isinstance(node, Scan):
            return self._scan(node, table)
        if isinstance(node, Filter):
            rows = self._rows(node.child, table)
            return [row for row in rows if self._passes(node.predicates, row)]
        if isinstance(node, EvalUdf):
            rows = self._rows(node.child, table)
            for output, call in node.calls:
                arguments = [self._evaluate(call.arg, row) for row in rows]
                results = self.dispatcher.call_batch(call.name, arguments)
                for row, value in zip(rows, results):
                    row[output] = value
            return rows
        raise SQLExecutionError(f"cannot execute plan node {node!r}")

    def _scan(self, node: Scan, table: Table) -> list[dict]:
        if node.columns is None:
            return [dict(row) for row in table]
        # Resolve requested names against the schema the way the
        # evaluator resolves row keys (exact, then lowercase); names
        # that resolve to nothing are simply absent from the emitted
        # rows, so unknown columns still error *lazily* downstream,
        # exactly like the naive oracle.
        declared = [column.name for column in table.columns]
        actuals: list[str] = []
        for name in node.columns:
            actual = None
            if name in declared:
                actual = name
            elif name.lower() in declared:
                actual = name.lower()
            if actual is not None and actual not in actuals:
                actuals.append(actual)
        return [
            {name: row[name] for name in actuals if name in row}
            for row in table
        ]

    def _sort(self, result: ResultSet, keys) -> None:
        lowered = [c.lower() for c in result.columns]
        indices = []
        for name, descending in keys:
            if name in result.columns:
                indices.append((result.columns.index(name), descending))
            elif name.lower() in lowered:
                indices.append((lowered.index(name.lower()), descending))
            else:
                raise SQLExecutionError(
                    f"ORDER BY column {name!r} is not in the select list"
                )
        # Stable sorts applied right-to-left give lexicographic order.
        for index, descending in reversed(indices):
            result.rows.sort(
                key=lambda row: (
                    row[index] is None,
                    0 if row[index] is None else row[index],
                ),
                reverse=descending,
            )

    def _aggregate_rows(self, node: Aggregate, rows: list[dict]) -> ResultSet:
        key_outputs = [
            (name, expr) for name, kind, expr in node.outputs if kind == "key"
        ]
        groups: dict[tuple, list[dict]] = {}
        for row in rows:
            key = tuple(self._evaluate(expr, row) for _, expr in key_outputs)
            groups.setdefault(key, []).append(row)
        columns = [name for name, _, _ in node.outputs]
        out_rows: list[tuple] = []
        for key, members in groups.items():
            values: list[Any] = []
            key_iter = iter(key)
            for name, kind, expr in node.outputs:
                if kind == "agg":
                    values.append(self._fold(expr, members))
                else:
                    values.append(next(key_iter))
            out_rows.append(tuple(values))
        out_rows.sort(key=lambda r: tuple((v is None, str(v)) for v in r))
        return ResultSet(columns, out_rows)

    def _fold(self, call: FuncCall, rows: list[dict]) -> Any:
        if call.name == "count" and call.arg == "*":
            return len(rows)
        values = [self._evaluate(call.arg, row) for row in rows]
        values = [v for v in values if v is not None]
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            return sum(values)
        if call.name == "avg":
            return sum(values) / len(values)
        if call.name == "min":
            return min(values)
        if call.name == "max":
            return max(values)
        raise SQLExecutionError(f"unknown aggregate {call.name!r}")

    def _evaluate(self, expr: Any, row: dict) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            if expr.name in row:
                return row[expr.name]
            lowered = expr.name.lower()
            if lowered in row:
                return row[lowered]
            raise SQLExecutionError(f"unknown column {expr.name!r}")
        if isinstance(expr, FuncCall):
            if expr.name in _AGGREGATES:
                raise SQLExecutionError(
                    f"aggregate {expr.name!r} is not allowed here"
                )
            # Only reachable on unoptimized plans (extraction hoists
            # every UDF into EvalUdf): fall back to per-row dispatch.
            argument = self._evaluate(expr.arg, row)
            return self.database.udfs.call(expr.name, argument)
        raise SQLExecutionError(f"cannot evaluate {expr!r}")

    def _passes(self, conditions, row: dict) -> bool:
        for condition in conditions:
            left = self._evaluate(condition.left, row)
            right = self._evaluate(condition.right, row)
            if left is None or right is None:
                return False
            if not _OPS[condition.op](left, right):
                return False
        return True


class NaiveExecutor:
    """The original row-at-a-time interpreter — the differential oracle.

    The method bodies are the pre-refactor ``Database`` internals,
    preserved verbatim: this class *defines* the engine's semantics,
    and the differential harness asserts the planned executor matches
    it bit-for-bit.
    """

    def __init__(self, database):
        self.database = database

    @property
    def udfs(self):
        """The owning database's UDF registry."""
        return self.database.udfs

    def execute(self, statement: SelectStatement, table: Table) -> ResultSet:
        """Run one parsed statement over ``table``, row at a time."""
        # 1. WHERE first — no select-list UDF has run yet.
        survivors = [row for row in table if self._passes(statement.where, row)]

        # 2. Evaluate select expressions (UDFs fire here, per survivor).
        has_aggregate = any(
            isinstance(item.expr, FuncCall) and item.expr.name in _AGGREGATES
            for item in statement.items
        )
        if has_aggregate or statement.group_by:
            result = self._execute_grouped(statement, survivors)
        else:
            columns = [item.output_name() for item in statement.items]
            rows = [
                tuple(self._evaluate(item.expr, row) for item in statement.items)
                for row in survivors
            ]
            result = ResultSet(columns, rows)
        self._apply_order_and_limit(statement, result)
        return result

    def _apply_order_and_limit(self, statement: SelectStatement,
                               result: ResultSet) -> None:
        if statement.order_by:
            lowered = [c.lower() for c in result.columns]
            indices = []
            for name, descending in statement.order_by:
                if name in result.columns:
                    indices.append((result.columns.index(name), descending))
                elif name.lower() in lowered:
                    indices.append((lowered.index(name.lower()), descending))
                else:
                    raise SQLExecutionError(
                        f"ORDER BY column {name!r} is not in the select list"
                    )
            # Stable sorts applied right-to-left give lexicographic order.
            for index, descending in reversed(indices):
                result.rows.sort(
                    key=lambda row: (
                        row[index] is None,
                        0 if row[index] is None else row[index],
                    ),
                    reverse=descending,
                )
        if statement.limit is not None:
            del result.rows[statement.limit:]

    def _execute_grouped(self, statement: SelectStatement,
                         rows: list[dict]) -> ResultSet:
        key_items = [
            item for item in statement.items
            if not (isinstance(item.expr, FuncCall) and item.expr.name in _AGGREGATES)
        ]
        agg_items = [
            item for item in statement.items
            if isinstance(item.expr, FuncCall) and item.expr.name in _AGGREGATES
        ]
        # GROUP BY columns must cover every non-aggregate select item
        # (by alias or by expression name).
        group_names = set(statement.group_by)
        if statement.group_by:
            for item in key_items:
                if item.output_name() not in group_names and not (
                    isinstance(item.expr, ColumnRef) and item.expr.name in group_names
                ):
                    raise SQLExecutionError(
                        f"{item.output_name()!r} must appear in GROUP BY"
                    )
        elif key_items:
            raise SQLExecutionError(
                "non-aggregate select items require GROUP BY"
            )

        groups: dict[tuple, list[dict]] = {}
        key_cache: dict[int, tuple] = {}
        for index, row in enumerate(rows):
            key = tuple(self._evaluate(item.expr, row) for item in key_items)
            key_cache[index] = key
            groups.setdefault(key, []).append(row)

        columns = [item.output_name() for item in statement.items]
        out_rows: list[tuple] = []
        for key, members in groups.items():
            values: list[Any] = []
            key_iter = iter(key)
            for item in statement.items:
                if item in agg_items:
                    values.append(self._aggregate(item.expr, members))
                else:
                    values.append(next(key_iter))
            out_rows.append(tuple(values))
        out_rows.sort(key=lambda r: tuple((v is None, str(v)) for v in r))
        return ResultSet(columns, out_rows)

    def _aggregate(self, call: FuncCall, rows: list[dict]) -> Any:
        if call.name == "count" and call.arg == "*":
            return len(rows)
        values = [self._evaluate(call.arg, row) for row in rows]
        values = [v for v in values if v is not None]
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            return sum(values)
        if call.name == "avg":
            return sum(values) / len(values)
        if call.name == "min":
            return min(values)
        if call.name == "max":
            return max(values)
        raise SQLExecutionError(f"unknown aggregate {call.name!r}")

    def _evaluate(self, expr: Any, row: dict) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            if expr.name in row:
                return row[expr.name]
            # SQL identifiers are case-insensitive.
            lowered = expr.name.lower()
            if lowered in row:
                return row[lowered]
            raise SQLExecutionError(f"unknown column {expr.name!r}")
        if isinstance(expr, FuncCall):
            if expr.name in _AGGREGATES:
                raise SQLExecutionError(
                    f"aggregate {expr.name!r} is not allowed here"
                )
            argument = self._evaluate(expr.arg, row)
            return self.udfs.call(expr.name, argument)
        raise SQLExecutionError(f"cannot evaluate {expr!r}")

    def _passes(self, conditions: tuple[Comparison, ...], row: dict) -> bool:
        for condition in conditions:
            left = self._evaluate(condition.left, row)
            right = self._evaluate(condition.right, row)
            if left is None or right is None:
                return False
            if not _OPS[condition.op](left, right):
                return False
        return True

"""User-defined functions bridging SQL to the inference service.

The case study's ``food_name(image_path)`` UDF sends the image behind a
path to a deployed Rafiki inference job over the gateway's web API and
returns the predicted label's name. Results are memoised per argument
— repeated paths cost one inference call — and every call is counted
so the predicate-pushdown saving is measurable.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.exceptions import SQLExecutionError

__all__ = ["UdfRegistry", "make_inference_udf"]


class UdfRegistry:
    """Named scalar UDFs with per-function call counters."""

    def __init__(self):
        self._functions: dict[str, Callable[[Any], Any]] = {}
        self.calls: dict[str, int] = {}

    def register(self, name: str, fn: Callable[[Any], Any]) -> None:
        key = name.lower()
        if key in self._functions:
            raise SQLExecutionError(f"UDF {name!r} already registered")
        self._functions[key] = fn
        self.calls[key] = 0

    def unregister(self, name: str) -> None:
        key = name.lower()
        self._functions.pop(key, None)
        self.calls.pop(key, None)

    def has(self, name: str) -> bool:
        return name.lower() in self._functions

    def call(self, name: str, argument: Any) -> Any:
        key = name.lower()
        if key not in self._functions:
            raise SQLExecutionError(f"unknown function {name!r}")
        self.calls[key] += 1
        return self._functions[key](argument)

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())


def make_inference_udf(
    gateway,
    inference_job_id: str,
    image_store: Mapping[str, np.ndarray],
    label_names: tuple[str, ...] | None = None,
    memoize: bool = True,
) -> Callable[[str], Any]:
    """Build a UDF that classifies ``image_store[path]`` via the gateway.

    The returned callable mirrors the case study's ``food_name``: it
    posts the image to ``/query/<job>`` and maps the predicted class id
    to ``label_names`` when given. When the model is re-trained and the
    job re-deployed, only ``inference_job_id`` changes — the SQL query
    at the database user's side is untouched.
    """
    cache: dict[str, Any] = {}

    def _udf(image_path: str) -> Any:
        if memoize and image_path in cache:
            return cache[image_path]
        if image_path not in image_store:
            raise SQLExecutionError(f"no image at path {image_path!r}")
        image = np.asarray(image_store[image_path])
        response = gateway.handle(
            "POST", f"/query/{inference_job_id}", {"img": image.tolist()}
        )
        if not response.ok:
            raise SQLExecutionError(
                f"inference call failed: {response.body.get('error')}"
            )
        label = response.body["label"]
        result = label_names[label] if label_names is not None else label
        if memoize:
            cache[image_path] = result
        return result

    return _udf

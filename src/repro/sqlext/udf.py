"""User-defined functions bridging SQL to the inference service.

The case study's ``food_name(image_path)`` UDF sends the image behind a
path to a deployed Rafiki inference job over the gateway's web API and
returns the predicted label's name. Results are memoised per argument
— repeated paths cost one inference call — and every call is counted
so the predicate-pushdown saving is measurable.

The planned executor never calls UDFs one row at a time: its EvalUdf
operator hands the whole argument batch to :meth:`UdfRegistry.call_batch`,
which prefers a registered *vectorised* implementation
(``register(name, fn, batch_fn=...)``) and otherwise maps the scalar
function. Either way the per-function call counter advances by the
batch length, so "UDF calls" always means model evaluations and the
planned-vs-naive savings stay comparable.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import SQLExecutionError

__all__ = ["UdfRegistry", "make_inference_udf", "make_batched_inference_udf"]


class UdfRegistry:
    """Named scalar UDFs with per-function call counters."""

    def __init__(self):
        self._functions: dict[str, Callable[[Any], Any]] = {}
        self._batch_functions: dict[str, Callable[[list], list]] = {}
        self.calls: dict[str, int] = {}

    def register(self, name: str, fn: Callable[[Any], Any],
                 batch_fn: Callable[[list], list] | None = None) -> None:
        """Register ``fn`` (and optionally a vectorised ``batch_fn``)."""
        key = name.lower()
        if key in self._functions:
            raise SQLExecutionError(f"UDF {name!r} already registered")
        self._functions[key] = fn
        if batch_fn is not None:
            self._batch_functions[key] = batch_fn
        self.calls[key] = 0

    def unregister(self, name: str) -> None:
        """Remove a UDF (no-op when absent)."""
        key = name.lower()
        self._functions.pop(key, None)
        self._batch_functions.pop(key, None)
        self.calls.pop(key, None)

    def has(self, name: str) -> bool:
        """Whether a UDF with this (case-insensitive) name exists."""
        return name.lower() in self._functions

    def call(self, name: str, argument: Any) -> Any:
        """Invoke a UDF on one argument (counts one call)."""
        key = name.lower()
        if key not in self._functions:
            raise SQLExecutionError(f"unknown function {name!r}")
        self.calls[key] += 1
        return self._functions[key](argument)

    def call_batch(self, name: str, arguments: Sequence[Any]) -> list[Any]:
        """Invoke a UDF once per argument, vectorised when possible.

        Counts ``len(arguments)`` calls — one model evaluation per
        argument — regardless of how the batch is executed, so call
        counters compare across executors.
        """
        key = name.lower()
        if key not in self._functions:
            raise SQLExecutionError(f"unknown function {name!r}")
        arguments = list(arguments)
        if not arguments:
            return []
        self.calls[key] += len(arguments)
        batch_fn = self._batch_functions.get(key)
        if batch_fn is not None:
            results = list(batch_fn(arguments))
            if len(results) != len(arguments):
                raise SQLExecutionError(
                    f"batch UDF {name!r} returned {len(results)} results "
                    f"for {len(arguments)} arguments"
                )
            return results
        fn = self._functions[key]
        return [fn(argument) for argument in arguments]

    @property
    def total_calls(self) -> int:
        """Sum of every function's call counter."""
        return sum(self.calls.values())


def make_inference_udf(
    gateway,
    inference_job_id: str,
    image_store: Mapping[str, np.ndarray],
    label_names: tuple[str, ...] | None = None,
    memoize: bool = True,
) -> Callable[[str], Any]:
    """Build a UDF that classifies ``image_store[path]`` via the gateway.

    The returned callable mirrors the case study's ``food_name``: it
    posts the image to ``/query/<job>`` and maps the predicted class id
    to ``label_names`` when given. When the model is re-trained and the
    job re-deployed, only ``inference_job_id`` changes — the SQL query
    at the database user's side is untouched.
    """
    cache: dict[str, Any] = {}

    def _udf(image_path: str) -> Any:
        if memoize and image_path in cache:
            return cache[image_path]
        if image_path not in image_store:
            raise SQLExecutionError(f"no image at path {image_path!r}")
        image = np.asarray(image_store[image_path])
        response = gateway.handle(
            "POST", f"/query/{inference_job_id}", {"img": image.tolist()}
        )
        if not response.ok:
            raise SQLExecutionError(
                f"inference call failed: {response.body.get('error')}"
            )
        label = response.body["label"]
        result = label_names[label] if label_names is not None else label
        if memoize:
            cache[image_path] = result
        return result

    return _udf


def make_batched_inference_udf(
    gateway,
    inference_job_id: str,
    image_store: Mapping[str, np.ndarray],
    label_names: tuple[str, ...] | None = None,
) -> Callable[[list[str]], list[Any]]:
    """Vectorised counterpart of :func:`make_inference_udf`.

    Stacks the images behind a batch of paths into one ``/query/<job>``
    POST — register it as a ``batch_fn`` so the planned executor's
    batched dispatches cost one gateway round-trip each instead of one
    per row.
    """

    def _batch_udf(image_paths: list[str]) -> list[Any]:
        images = []
        for image_path in image_paths:
            if image_path not in image_store:
                raise SQLExecutionError(f"no image at path {image_path!r}")
            images.append(np.asarray(image_store[image_path]))
        response = gateway.handle(
            "POST", f"/query/{inference_job_id}",
            {"img": np.stack(images).tolist()},
        )
        if not response.ok:
            raise SQLExecutionError(
                f"inference call failed: {response.body.get('error')}"
            )
        labels = response.body["label"]
        labels = labels if isinstance(labels, list) else [labels]
        if label_names is not None:
            return [label_names[label] for label in labels]
        return list(labels)

    return _batch_udf

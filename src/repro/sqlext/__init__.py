"""Mini SQL engine with UDFs calling the inference service (Section 8).

Supports the case-study workload: ``CREATE TABLE``-style table
definitions, ``INSERT``, and ``SELECT`` with ``WHERE``, ``GROUP BY``
and aggregates, where select expressions may invoke registered
user-defined functions. The engine evaluates the ``WHERE`` predicate
*before* any select-list UDF, so a query like

    SELECT food_name(image_path) AS name, count(*)
    FROM foodlog WHERE age > 52 GROUP BY name

only pays one inference call per *filtered* row — the cost saving the
paper's case study demonstrates.
"""

from repro.sqlext.engine import Database, ResultSet
from repro.sqlext.table import Column, Table
from repro.sqlext.udf import UdfRegistry, make_inference_udf

__all__ = ["Database", "ResultSet", "Table", "Column", "UdfRegistry", "make_inference_udf"]

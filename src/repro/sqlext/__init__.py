"""Mini SQL engine with UDFs calling the inference service (Section 8).

Supports the case-study workload: ``CREATE TABLE``-style table
definitions, ``INSERT``, and ``SELECT`` with ``WHERE``, ``GROUP BY``
and aggregates, where select expressions may invoke registered
user-defined functions. Queries compile to a logical plan
(:mod:`repro.sqlext.plan`), run through optimizer passes
(:mod:`repro.sqlext.optimizer`: predicate pushdown below UDF
evaluation, common-UDF-subexpression elimination, projection pruning)
and execute on a vectorized executor (:mod:`repro.sqlext.exec`) whose
UDF operator dispatches each batch of surviving rows as one call
through the serving batcher and prediction cache. A query like

    SELECT food_name(image_path) AS name, count(*)
    FROM foodlog WHERE age > 52 GROUP BY name

therefore pays one *batched*, cached inference dispatch over the
filtered rows — the cost saving the paper's case study demonstrates.
The pre-plan row-at-a-time interpreter survives as
:class:`~repro.sqlext.exec.NaiveExecutor`, the oracle the differential
test harness checks the planner against bit-for-bit.
"""

from repro.sqlext.engine import Database, ResultSet
from repro.sqlext.exec import NaiveExecutor, PlannedExecutor, UdfBatchDispatcher
from repro.sqlext.table import Column, Table
from repro.sqlext.udf import UdfRegistry, make_batched_inference_udf, make_inference_udf

__all__ = [
    "Database",
    "ResultSet",
    "Table",
    "Column",
    "UdfRegistry",
    "NaiveExecutor",
    "PlannedExecutor",
    "UdfBatchDispatcher",
    "make_inference_udf",
    "make_batched_inference_udf",
]

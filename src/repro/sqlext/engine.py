"""The SQL parser and executor.

Grammar (keywords case-insensitive)::

    SELECT item (',' item)* FROM ident [WHERE cond] [GROUP BY ident+]
        [ORDER BY ident [ASC|DESC] (',' ident [ASC|DESC])*] [LIMIT n]
    item  := expr [AS ident]
    expr  := COUNT '(' '*' ')' | func '(' expr ')' | ident | literal
    cond  := cmp (AND cmp)*
    cmp   := expr op expr        op in = != <> < <= > >=

Aggregates: ``count``, ``sum``, ``avg``, ``min``, ``max``. Any other
function name resolves against the UDF registry. The executor applies
``WHERE`` before evaluating select-list expressions, so UDFs run only
on surviving rows (the Section 8 saving), and tracks how many UDF
calls each query made.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import SQLExecutionError, SQLParseError
from repro.sqlext.table import Column, Table
from repro.sqlext.udf import UdfRegistry

__all__ = ["Database", "ResultSet"]

_AGGREGATES = ("count", "sum", "avg", "min", "max")

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_.]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>)"
    r"|(?P<punct>[(),*])"
    r")"
)


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLParseError(f"cannot tokenise at: {text[pos:pos+20]!r}")
        pos = match.end()
        for kind in ("number", "string", "ident", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class FuncCall:
    name: str
    arg: Any  # ColumnRef | Literal | FuncCall | "*"


@dataclass(frozen=True)
class Comparison:
    left: Any
    op: str
    right: Any


@dataclass(frozen=True)
class SelectItem:
    expr: Any
    alias: str | None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, FuncCall):
            inner = "*" if self.expr.arg == "*" else _expr_name(self.expr.arg)
            return f"{self.expr.name}({inner})"
        return "expr"


def _expr_name(expr: Any) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, FuncCall):
        return f"{expr.name}({'*' if expr.arg == '*' else _expr_name(expr.arg)})"
    return "expr"


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: str
    where: tuple[Comparison, ...]
    group_by: tuple[str, ...]
    order_by: tuple[tuple[str, bool], ...] = ()  # (name, descending)
    limit: int | None = None


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self.pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        kind, value = self._next()
        if kind != "ident" or value.lower() != word:
            raise SQLParseError(f"expected {word.upper()}, got {value!r}")

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token[0] == "ident" and token[1].lower() == word

    def parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        items = [self._parse_item()]
        while self._peek() == ("punct", ","):
            self._next()
            items.append(self._parse_item())
        self._expect_keyword("from")
        kind, table = self._next()
        if kind != "ident":
            raise SQLParseError(f"expected table name, got {table!r}")
        where: list[Comparison] = []
        if self._at_keyword("where"):
            self._next()
            where.append(self._parse_comparison())
            while self._at_keyword("and"):
                self._next()
                where.append(self._parse_comparison())
        group_by: list[str] = []
        if self._at_keyword("group"):
            self._next()
            self._expect_keyword("by")
            kind, name = self._next()
            if kind != "ident":
                raise SQLParseError(f"expected GROUP BY column, got {name!r}")
            group_by.append(name)
            while self._peek() == ("punct", ","):
                self._next()
                kind, name = self._next()
                if kind != "ident":
                    raise SQLParseError(f"expected GROUP BY column, got {name!r}")
                group_by.append(name)
        order_by: list[tuple[str, bool]] = []
        if self._at_keyword("order"):
            self._next()
            self._expect_keyword("by")
            order_by.append(self._parse_order_term())
            while self._peek() == ("punct", ","):
                self._next()
                order_by.append(self._parse_order_term())
        limit: int | None = None
        if self._at_keyword("limit"):
            self._next()
            kind, value = self._next()
            if kind != "number" or "." in value or int(value) < 0:
                raise SQLParseError(f"LIMIT expects a non-negative integer, got {value!r}")
            limit = int(value)
        if self._peek() is not None:
            raise SQLParseError(f"trailing tokens: {self.tokens[self.pos:]}")
        return SelectStatement(tuple(items), table, tuple(where), tuple(group_by),
                               tuple(order_by), limit)

    def _parse_order_term(self) -> tuple[str, bool]:
        kind, name = self._next()
        if kind != "ident":
            raise SQLParseError(f"expected ORDER BY column, got {name!r}")
        descending = False
        if self._at_keyword("desc"):
            self._next()
            descending = True
        elif self._at_keyword("asc"):
            self._next()
        return name, descending

    def _parse_item(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._at_keyword("as"):
            self._next()
            kind, alias_token = self._next()
            if kind != "ident":
                raise SQLParseError(f"expected alias, got {alias_token!r}")
            alias = alias_token
        return SelectItem(expr, alias)

    def _parse_expr(self) -> Any:
        kind, value = self._next()
        if kind == "number":
            return Literal(float(value) if "." in value else int(value))
        if kind == "string":
            return Literal(value[1:-1].replace("''", "'"))
        if kind == "ident":
            if self._peek() == ("punct", "("):
                self._next()
                if self._peek() == ("punct", "*"):
                    self._next()
                    arg: Any = "*"
                else:
                    arg = self._parse_expr()
                closing = self._next()
                if closing != ("punct", ")"):
                    raise SQLParseError(f"expected ')', got {closing[1]!r}")
                return FuncCall(value.lower(), arg)
            return ColumnRef(value)
        raise SQLParseError(f"unexpected token {value!r}")

    def _parse_comparison(self) -> Comparison:
        left = self._parse_expr()
        kind, op = self._next()
        if kind != "op":
            raise SQLParseError(f"expected comparison operator, got {op!r}")
        right = self._parse_expr()
        return Comparison(left, op, right)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


@dataclass
class ResultSet:
    """Query output: column names plus row tuples."""

    columns: list[str]
    rows: list[tuple]
    udf_calls: int = 0

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Database:
    """Tables + UDF registry + query execution."""

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.udfs = UdfRegistry()
        self.last_udf_calls = 0

    def create_table(self, name: str, columns: list[Column],
                     primary_key: tuple[str, ...] = ()) -> Table:
        if name in self.tables:
            raise SQLExecutionError(f"table {name!r} already exists")
        table = Table(name=name, columns=columns, primary_key=primary_key)
        self.tables[name] = table
        return table

    def insert(self, table_name: str, **values: Any) -> None:
        self._table(table_name).insert(**values)

    def _table(self, name: str) -> Table:
        if name in self.tables:
            return self.tables[name]
        lowered = name.lower()
        if lowered in self.tables:
            return self.tables[lowered]
        raise SQLExecutionError(f"unknown table {name!r}")

    # ------------------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Parse and run one SELECT statement."""
        statement = _Parser(_tokenize(sql)).parse_select()
        table = self._table(statement.table)
        udf_calls_before = self.udfs.total_calls

        # 1. WHERE first — no select-list UDF has run yet.
        survivors = [row for row in table if self._passes(statement.where, row)]

        # 2. Evaluate select expressions (UDFs fire here, per survivor).
        has_aggregate = any(
            isinstance(item.expr, FuncCall) and item.expr.name in _AGGREGATES
            for item in statement.items
        )
        if has_aggregate or statement.group_by:
            result = self._execute_grouped(statement, survivors)
        else:
            columns = [item.output_name() for item in statement.items]
            rows = [
                tuple(self._evaluate(item.expr, row) for item in statement.items)
                for row in survivors
            ]
            result = ResultSet(columns, rows)
        self._apply_order_and_limit(statement, result)
        result.udf_calls = self.udfs.total_calls - udf_calls_before
        self.last_udf_calls = result.udf_calls
        return result

    def _apply_order_and_limit(self, statement: SelectStatement, result: ResultSet) -> None:
        if statement.order_by:
            lowered = [c.lower() for c in result.columns]
            indices = []
            for name, descending in statement.order_by:
                if name in result.columns:
                    indices.append((result.columns.index(name), descending))
                elif name.lower() in lowered:
                    indices.append((lowered.index(name.lower()), descending))
                else:
                    raise SQLExecutionError(
                        f"ORDER BY column {name!r} is not in the select list"
                    )
            # Stable sorts applied right-to-left give lexicographic order.
            for index, descending in reversed(indices):
                result.rows.sort(
                    key=lambda row: (
                        row[index] is None,
                        0 if row[index] is None else row[index],
                    ),
                    reverse=descending,
                )
        if statement.limit is not None:
            del result.rows[statement.limit:]

    def _execute_grouped(self, statement: SelectStatement, rows: list[dict]) -> ResultSet:
        key_items = [
            item for item in statement.items
            if not (isinstance(item.expr, FuncCall) and item.expr.name in _AGGREGATES)
        ]
        agg_items = [
            item for item in statement.items
            if isinstance(item.expr, FuncCall) and item.expr.name in _AGGREGATES
        ]
        # GROUP BY columns must cover every non-aggregate select item
        # (by alias or by expression name).
        group_names = set(statement.group_by)
        if statement.group_by:
            for item in key_items:
                if item.output_name() not in group_names and not (
                    isinstance(item.expr, ColumnRef) and item.expr.name in group_names
                ):
                    raise SQLExecutionError(
                        f"{item.output_name()!r} must appear in GROUP BY"
                    )
        elif key_items:
            raise SQLExecutionError(
                "non-aggregate select items require GROUP BY"
            )

        groups: dict[tuple, list[dict]] = {}
        key_cache: dict[int, tuple] = {}
        for index, row in enumerate(rows):
            key = tuple(self._evaluate(item.expr, row) for item in key_items)
            key_cache[index] = key
            groups.setdefault(key, []).append(row)

        columns = [item.output_name() for item in statement.items]
        out_rows: list[tuple] = []
        for key, members in groups.items():
            values: list[Any] = []
            key_iter = iter(key)
            for item in statement.items:
                if item in agg_items:
                    values.append(self._aggregate(item.expr, members))
                else:
                    values.append(next(key_iter))
            out_rows.append(tuple(values))
        out_rows.sort(key=lambda r: tuple((v is None, str(v)) for v in r))
        return ResultSet(columns, out_rows)

    def _aggregate(self, call: FuncCall, rows: list[dict]) -> Any:
        if call.name == "count" and call.arg == "*":
            return len(rows)
        values = [self._evaluate(call.arg, row) for row in rows]
        values = [v for v in values if v is not None]
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            return sum(values)
        if call.name == "avg":
            return sum(values) / len(values)
        if call.name == "min":
            return min(values)
        if call.name == "max":
            return max(values)
        raise SQLExecutionError(f"unknown aggregate {call.name!r}")

    def _evaluate(self, expr: Any, row: dict) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            if expr.name in row:
                return row[expr.name]
            # SQL identifiers are case-insensitive.
            lowered = expr.name.lower()
            if lowered in row:
                return row[lowered]
            raise SQLExecutionError(f"unknown column {expr.name!r}")
        if isinstance(expr, FuncCall):
            if expr.name in _AGGREGATES:
                raise SQLExecutionError(
                    f"aggregate {expr.name!r} is not allowed here"
                )
            argument = self._evaluate(expr.arg, row)
            return self.udfs.call(expr.name, argument)
        raise SQLExecutionError(f"cannot evaluate {expr!r}")

    def _passes(self, conditions: tuple[Comparison, ...], row: dict) -> bool:
        for condition in conditions:
            left = self._evaluate(condition.left, row)
            right = self._evaluate(condition.right, row)
            if left is None or right is None:
                return False
            if not _OPS[condition.op](left, right):
                return False
        return True

"""SQL text handling: tokenizer, AST, parser, and the ``Database`` facade.

Grammar (keywords case-insensitive)::

    SELECT item (',' item)* FROM ident [WHERE cond] [GROUP BY ident+]
        [ORDER BY ident [ASC|DESC] (',' ident [ASC|DESC])*] [LIMIT n]
    item  := expr [AS ident]
    expr  := COUNT '(' '*' ')' | func '(' expr ')' | ident | literal
    cond  := cmp (AND cmp)*
    cmp   := expr op expr        op in = != <> < <= > >=

Aggregates: ``count``, ``sum``, ``avg``, ``min``, ``max``. Any other
function name resolves against the UDF registry.

Execution lives in :mod:`repro.sqlext.exec`: :meth:`Database.execute`
compiles the parsed statement into a logical plan
(:mod:`repro.sqlext.plan`), optimizes it
(:mod:`repro.sqlext.optimizer`) and runs it on the vectorized
:class:`~repro.sqlext.exec.PlannedExecutor`, whose UDF operator
dispatches whole batches of surviving rows through the serving batcher
and prediction cache. The original row-at-a-time interpreter survives
as :class:`~repro.sqlext.exec.NaiveExecutor` — the differential-test
oracle — selectable with ``executor="naive"``.

Tokenizer notes: ``-`` is its own operator token (a leading minus on a
number literal is resolved by the *parser* as unary minus, so ``x>-3``
and a future binary minus cannot be confused), string literals escape
quotes by doubling (``'it''s'``), and every token carries its source
position so parse errors can point at the offending character.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigurationError, SQLExecutionError, SQLParseError
from repro.sqlext.table import Column, Table
from repro.sqlext.udf import UdfRegistry

__all__ = ["Database", "ResultSet"]

_AGGREGATES = ("count", "sum", "avg", "min", "max")

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d+|\d+)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_.]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|-)"
    r"|(?P<punct>[(),*])"
    r")"
)

#: the comparison operators the grammar accepts (``-`` is an op *token*
#: but only valid as unary minus inside an expression).
COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def _tokenize_spans(sql: str) -> list[tuple[str, str, int]]:
    """Tokenize into ``(kind, value, position)`` triples.

    ``position`` is the 0-based offset of the token's first character in
    the stripped statement text, so :class:`SQLParseError` can report
    where things went wrong.
    """
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == match.start():
            raise SQLParseError(
                f"cannot tokenise at position {pos}: {text[pos:pos+20]!r}"
            )
        pos = match.end()
        for kind in ("number", "string", "ident", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value, match.start(kind)))
                break
    return tokens


def _tokenize(sql: str) -> list[tuple[str, str]]:
    """Tokenize into ``(kind, value)`` pairs (position-free view)."""
    return [(kind, value) for kind, value, _ in _tokenize_spans(sql)]


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a named column."""

    name: str


@dataclass(frozen=True)
class Literal:
    """A constant value (number or string)."""

    value: Any


@dataclass(frozen=True)
class FuncCall:
    """A function application: an aggregate or a registered UDF."""

    name: str
    arg: Any  # ColumnRef | Literal | FuncCall | "*"


@dataclass(frozen=True)
class Comparison:
    """One ``left op right`` predicate from a WHERE conjunction."""

    left: Any
    op: str
    right: Any


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression plus optional alias."""

    expr: Any
    alias: str | None

    def output_name(self) -> str:
        """The result-column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, FuncCall):
            inner = "*" if self.expr.arg == "*" else _expr_name(self.expr.arg)
            return f"{self.expr.name}({inner})"
        return "expr"


def _expr_name(expr: Any) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, FuncCall):
        return f"{expr.name}({'*' if expr.arg == '*' else _expr_name(expr.arg)})"
    return "expr"


def render_expr(expr: Any) -> str:
    """Render an expression back to SQL text (used by ``explain()``).

    Unlike :func:`_expr_name` (which feeds result-column *names* and is
    frozen for backward compatibility), this renders valid SQL: string
    literals are single-quoted with embedded quotes doubled, so an
    ``explain()`` line round-trips through the tokenizer.
    """
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            return "'" + expr.value.replace("'", "''") + "'"
        return repr(expr.value)
    if isinstance(expr, FuncCall):
        inner = "*" if expr.arg == "*" else render_expr(expr.arg)
        return f"{expr.name}({inner})"
    if isinstance(expr, Comparison):
        return f"{render_expr(expr.left)} {expr.op} {render_expr(expr.right)}"
    return str(expr)


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT: items, source table and the trailing clauses."""

    items: tuple[SelectItem, ...]
    table: str
    where: tuple[Comparison, ...]
    group_by: tuple[str, ...]
    order_by: tuple[tuple[str, bool], ...] = ()  # (name, descending)
    limit: int | None = None


class _Parser:
    """Recursive-descent parser over the position-tagged token list."""

    def __init__(self, tokens: list[tuple[str, str, int]]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _peek_pair(self) -> tuple[str, str] | None:
        token = self._peek()
        return (token[0], token[1]) if token is not None else None

    def _next(self) -> tuple[str, str, int]:
        token = self._peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self.pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        kind, value, pos = self._next()
        if kind != "ident" or value.lower() != word:
            raise SQLParseError(
                f"expected {word.upper()}, got {value!r} at position {pos}"
            )

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token[0] == "ident" and token[1].lower() == word

    def parse_select(self) -> SelectStatement:
        """Parse one full SELECT statement (rejecting trailing tokens)."""
        self._expect_keyword("select")
        items = [self._parse_item()]
        while self._peek_pair() == ("punct", ","):
            self._next()
            items.append(self._parse_item())
        self._expect_keyword("from")
        kind, table, pos = self._next()
        if kind != "ident":
            raise SQLParseError(f"expected table name, got {table!r} at position {pos}")
        where: list[Comparison] = []
        if self._at_keyword("where"):
            self._next()
            where.append(self._parse_comparison())
            while self._at_keyword("and"):
                self._next()
                where.append(self._parse_comparison())
        group_by: list[str] = []
        if self._at_keyword("group"):
            self._next()
            self._expect_keyword("by")
            group_by.append(self._parse_group_column())
            while self._peek_pair() == ("punct", ","):
                self._next()
                group_by.append(self._parse_group_column())
        order_by: list[tuple[str, bool]] = []
        if self._at_keyword("order"):
            self._next()
            self._expect_keyword("by")
            order_by.append(self._parse_order_term())
            while self._peek_pair() == ("punct", ","):
                self._next()
                order_by.append(self._parse_order_term())
        limit: int | None = None
        if self._at_keyword("limit"):
            self._next()
            kind, value, pos = self._next()
            if kind != "number" or "." in value:
                raise SQLParseError(
                    f"LIMIT expects a non-negative integer, "
                    f"got {value!r} at position {pos}"
                )
            limit = int(value)
        trailing = self._peek()
        if trailing is not None:
            rest = [(kind, value) for kind, value, _ in self.tokens[self.pos:]]
            raise SQLParseError(
                f"trailing tokens at position {trailing[2]}: {rest}"
            )
        return SelectStatement(tuple(items), table, tuple(where), tuple(group_by),
                               tuple(order_by), limit)

    def _parse_group_column(self) -> str:
        kind, name, pos = self._next()
        if kind != "ident":
            raise SQLParseError(
                f"expected GROUP BY column, got {name!r} at position {pos}"
            )
        return name

    def _parse_order_term(self) -> tuple[str, bool]:
        kind, name, pos = self._next()
        if kind != "ident":
            raise SQLParseError(
                f"expected ORDER BY column, got {name!r} at position {pos}"
            )
        descending = False
        if self._at_keyword("desc"):
            self._next()
            descending = True
        elif self._at_keyword("asc"):
            self._next()
        return name, descending

    def _parse_item(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self._at_keyword("as"):
            self._next()
            kind, alias_token, pos = self._next()
            if kind != "ident":
                raise SQLParseError(
                    f"expected alias, got {alias_token!r} at position {pos}"
                )
            alias = alias_token
        return SelectItem(expr, alias)

    def _parse_expr(self) -> Any:
        kind, value, pos = self._next()
        if kind == "op" and value == "-":
            # Unary minus: the tokenizer never folds the sign into the
            # number, so negative literals and any future binary minus
            # cannot be confused.
            kind, value, num_pos = self._next()
            if kind != "number":
                raise SQLParseError(
                    f"expected a number after unary '-', got {value!r} "
                    f"at position {num_pos}"
                )
            return Literal(-float(value) if "." in value else -int(value))
        if kind == "number":
            return Literal(float(value) if "." in value else int(value))
        if kind == "string":
            return Literal(value[1:-1].replace("''", "'"))
        if kind == "ident":
            if self._peek_pair() == ("punct", "("):
                self._next()
                if self._peek_pair() == ("punct", "*"):
                    self._next()
                    arg: Any = "*"
                else:
                    arg = self._parse_expr()
                closing = self._next()
                if (closing[0], closing[1]) != ("punct", ")"):
                    raise SQLParseError(
                        f"expected ')', got {closing[1]!r} at position {closing[2]}"
                    )
                return FuncCall(value.lower(), arg)
            return ColumnRef(value)
        raise SQLParseError(f"unexpected token {value!r} at position {pos}")

    def _parse_comparison(self) -> Comparison:
        left = self._parse_expr()
        kind, op, pos = self._next()
        if kind != "op" or op not in COMPARISON_OPS:
            raise SQLParseError(
                f"expected comparison operator, got {op!r} at position {pos}"
            )
        right = self._parse_expr()
        return Comparison(left, op, right)


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement from SQL text."""
    return _Parser(_tokenize_spans(sql)).parse_select()


# ----------------------------------------------------------------------
# results + shared evaluation pieces
# ----------------------------------------------------------------------


@dataclass
class ResultSet:
    """Query output: column names plus row tuples.

    ``udf_calls`` counts per-argument UDF invocations the query made;
    on the planned executor ``udf_batches`` counts how many batched
    dispatches those rode in and ``cache_hits`` how many arguments were
    served from the prediction cache without any dispatch at all.
    """

    columns: list[str]
    rows: list[tuple]
    udf_calls: int = 0
    udf_batches: int = 0
    cache_hits: int = 0
    executor: str = ""

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as a list of ``{column: value}`` dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Database:
    """Tables + UDF registry + query execution.

    ``execute`` compiles each SELECT to an optimized logical plan and
    runs it on the vectorized executor, whose UDF operator dispatches
    whole batches of surviving rows through the serving batcher and
    prediction cache (``udf_batching``/``udf_cache`` toggle that path;
    with batching off UDFs run row-at-a-time like the naive oracle).
    """

    def __init__(
        self,
        udf_batching: bool = True,
        udf_cache: bool = True,
        cache_capacity: int = 1024,
        batch_sizes=None,
        tau: float = 0.56,
    ):
        from repro.sqlext.exec import NaiveExecutor, PlannedExecutor, UdfBatchDispatcher

        self.tables: dict[str, Table] = {}
        self.udfs = UdfRegistry()
        self.last_udf_calls = 0
        self.dispatcher = UdfBatchDispatcher(
            self.udfs,
            batching=udf_batching,
            cache_capacity=cache_capacity if udf_cache else 0,
            batch_sizes=batch_sizes,
            tau=tau,
        )
        self._planned = PlannedExecutor(self, self.dispatcher)
        self._naive = NaiveExecutor(self)
        self.default_executor = "planned"

    def create_table(self, name: str, columns: list[Column],
                     primary_key: tuple[str, ...] = ()) -> Table:
        """Create a new table (name must be unused)."""
        if name in self.tables:
            raise SQLExecutionError(f"table {name!r} already exists")
        table = Table(name=name, columns=columns, primary_key=primary_key)
        self.tables[name] = table
        return table

    def insert(self, table_name: str, **values: Any) -> None:
        """Insert one row into the named table."""
        self._table(table_name).insert(**values)

    def _table(self, name: str) -> Table:
        if name in self.tables:
            return self.tables[name]
        lowered = name.lower()
        if lowered in self.tables:
            return self.tables[lowered]
        raise SQLExecutionError(f"unknown table {name!r}")

    # ------------------------------------------------------------------

    def execute(self, sql: str, executor: str | None = None,
                optimize: bool = True) -> ResultSet:
        """Parse and run one SELECT statement.

        ``executor`` selects ``"planned"`` (the default: logical plan +
        optimizer + batched UDF dispatch) or ``"naive"`` (the original
        row-at-a-time interpreter, kept as the differential-test
        oracle). ``optimize=False`` runs the planned executor on the
        canonical unoptimized plan.
        """
        from repro import telemetry

        statement = parse_select(sql)
        table = self._table(statement.table)
        which = executor or self.default_executor
        calls_before = self.udfs.total_calls
        batches_before = self.dispatcher.batches_dispatched
        hits_before = self.dispatcher.cache_hits
        if which == "naive":
            result = self._naive.execute(statement, table)
        elif which == "planned":
            result = self._planned.execute(statement, table, optimize=optimize)
        else:
            raise ConfigurationError(
                f"executor must be 'planned' or 'naive', got {which!r}"
            )
        result.executor = which
        result.udf_calls = self.udfs.total_calls - calls_before
        result.udf_batches = self.dispatcher.batches_dispatched - batches_before
        result.cache_hits = self.dispatcher.cache_hits - hits_before
        self.last_udf_calls = result.udf_calls
        registry = telemetry.get_registry()
        registry.counter(
            "repro_sql_queries_total", "SQL queries executed, by executor."
        ).inc(executor=which)
        registry.counter(
            "repro_sql_rows_scanned_total", "Base-table rows scanned by SQL queries."
        ).inc(len(table), table=table.name)
        if result.udf_calls:
            registry.counter(
                "repro_sql_udf_calls_total",
                "Per-argument UDF invocations made by SQL queries.",
            ).inc(result.udf_calls, executor=which)
        return result

    def explain(self, sql: str, optimize: bool = True) -> str:
        """The textual logical plan ``execute`` would run for ``sql``."""
        from repro.sqlext.optimizer import optimize_plan
        from repro.sqlext.plan import build_plan, explain_plan

        plan = build_plan(parse_select(sql))
        if optimize:
            plan = optimize_plan(plan)
        return explain_plan(plan)

    def invalidate_udf_cache(self) -> None:
        """Drop every cached UDF result (call after re-deploying models)."""
        self.dispatcher.invalidate()

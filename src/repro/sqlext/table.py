"""In-memory tables with typed columns and primary keys."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import SQLExecutionError

__all__ = ["Column", "Table"]

_TYPES = {
    "integer": int,
    "int": int,
    "real": float,
    "float": float,
    "text": str,
    "str": str,
}


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    dtype: str = "text"
    not_null: bool = False

    def coerce(self, value: Any) -> Any:
        if value is None:
            if self.not_null:
                raise SQLExecutionError(f"column {self.name!r} is NOT NULL")
            return None
        caster = _TYPES.get(self.dtype.lower())
        if caster is None:
            raise SQLExecutionError(f"unknown column type {self.dtype!r}")
        try:
            return caster(value)
        except (TypeError, ValueError) as exc:
            raise SQLExecutionError(
                f"cannot store {value!r} in {self.dtype} column {self.name!r}"
            ) from exc


@dataclass
class Table:
    """A named table: columns plus rows stored as dicts."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    rows: list[dict[str, Any]] = field(default_factory=list)
    _pk_index: set[tuple] = field(default_factory=set)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SQLExecutionError(f"duplicate column names in {self.name!r}: {names}")
        for key in self.primary_key:
            if key not in names:
                raise SQLExecutionError(f"primary key column {key!r} not in table {self.name!r}")

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def insert(self, **values: Any) -> None:
        """Insert one row (missing columns become NULL)."""
        unknown = sorted(set(values) - set(self.column_names))
        if unknown:
            raise SQLExecutionError(f"unknown columns for {self.name!r}: {unknown}")
        row = {c.name: c.coerce(values.get(c.name)) for c in self.columns}
        if self.primary_key:
            key = tuple(row[k] for k in self.primary_key)
            if key in self._pk_index:
                raise SQLExecutionError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index.add(key)
        self.rows.append(row)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)
